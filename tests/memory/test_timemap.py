"""Time map and view tests, including semilattice laws by property."""


from hypothesis import given
from hypothesis import strategies as st

from repro.memory.timemap import BOTTOM_TIMEMAP, BOTTOM_VIEW, TimeMap, View, view_of
from repro.memory.timestamps import ts

VARS = ("x", "y", "z")

timemaps = st.dictionaries(
    st.sampled_from(VARS),
    st.integers(min_value=0, max_value=100),
    max_size=3,
).map(TimeMap.of)


class TestTimeMap:
    def test_default_is_zero(self):
        assert BOTTOM_TIMEMAP.get("anything") == 0

    def test_set_get(self):
        tm = TimeMap().set("x", ts(3))
        assert tm.get("x") == 3
        assert tm.get("y") == 0

    def test_zero_entries_not_stored(self):
        tm = TimeMap.of({"x": ts(0)})
        assert tm == BOTTOM_TIMEMAP

    def test_bump_raises(self):
        tm = TimeMap().set("x", ts(3))
        assert tm.bump("x", ts(5)).get("x") == 5

    def test_bump_never_lowers(self):
        tm = TimeMap().set("x", ts(3))
        assert tm.bump("x", ts(1)).get("x") == 3

    def test_vars(self):
        tm = TimeMap.of({"y": ts(1), "x": ts(2)})
        assert tm.vars() == ("x", "y")


@given(timemaps, timemaps)
def test_join_commutative(a, b):
    assert a.join(b) == b.join(a)


@given(timemaps, timemaps, timemaps)
def test_join_associative(a, b, c):
    assert a.join(b).join(c) == a.join(b.join(c))


@given(timemaps)
def test_join_idempotent(a):
    assert a.join(a) == a


@given(timemaps)
def test_bottom_is_identity(a):
    assert a.join(BOTTOM_TIMEMAP) == a


@given(timemaps, timemaps)
def test_join_is_upper_bound(a, b):
    joined = a.join(b)
    assert a.leq(joined)
    assert b.leq(joined)


@given(timemaps, timemaps)
def test_leq_antisymmetric_on_join(a, b):
    if a.leq(b) and b.leq(a):
        assert a == b


class TestView:
    def test_bottom(self):
        assert BOTTOM_VIEW.tna.get("x") == 0
        assert BOTTOM_VIEW.trlx.get("x") == 0

    def test_bump_write_raises_both(self):
        view = BOTTOM_VIEW.bump_write("x", ts(2))
        assert view.tna.get("x") == 2
        assert view.trlx.get("x") == 2

    def test_bump_read_na_raises_only_trlx(self):
        """The paper's na-read rule: the check is against T_na, but only
        T_rlx records the read (Sec. 3)."""
        view = BOTTOM_VIEW.bump_read_na("x", ts(2))
        assert view.tna.get("x") == 0
        assert view.trlx.get("x") == 2

    def test_bump_read_atomic_raises_both(self):
        view = BOTTOM_VIEW.bump_read_atomic("x", ts(2))
        assert view.tna.get("x") == 2
        assert view.trlx.get("x") == 2

    def test_join_pointwise(self):
        a = view_of({"x": ts(1)})
        b = view_of({"y": ts(2)})
        joined = a.join(b)
        assert joined.tna.get("x") == 1
        assert joined.tna.get("y") == 2

    def test_leq(self):
        small = view_of({"x": ts(1)})
        large = view_of({"x": ts(2), "y": ts(1)})
        assert small.leq(large)
        assert not large.leq(small)


@given(timemaps)
def test_view_tna_leq_trlx_invariant_preserved(tm):
    """Starting from ⊥ and applying any sequence of bump operations keeps
    T_na ≤ T_rlx (here spot-checked on the three primitives)."""
    view = View(tm, tm)
    for var in VARS:
        view = view.bump_read_na(var, ts(7))
        assert view.tna.leq(view.trlx)
        view = view.bump_write(var, ts(9))
        assert view.tna.leq(view.trlx)
        view = view.bump_read_atomic(var, ts(11))
        assert view.tna.leq(view.trlx)
