"""Message and reservation tests."""

import pytest

from repro.lang.values import Int32
from repro.memory.message import Message, Reservation, init_message
from repro.memory.timemap import BOTTOM_VIEW, view_of
from repro.memory.timestamps import ts


class TestMessage:
    def test_fields(self):
        m = Message("x", Int32(5), ts(1), ts(2))
        assert (m.var, int(m.value), m.frm, m.to) == ("x", 5, 1, 2)
        assert m.view == BOTTOM_VIEW
        assert m.is_concrete and not m.is_reservation

    def test_value_normalized(self):
        assert Message("x", 2**31, ts(0), ts(1)).value == -(2**31)

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            Message("x", Int32(1), ts(2), ts(1))

    def test_empty_interval_only_for_init(self):
        # (0, 0] is the initialization message's interval.
        Message("x", Int32(0), ts(0), ts(0))
        with pytest.raises(ValueError):
            Message("x", Int32(0), ts(1), ts(1))

    def test_message_view_carried(self):
        view = view_of({"y": ts(3)})
        m = Message("x", Int32(1), ts(0), ts(1), view)
        assert m.view.tna.get("y") == 3

    def test_str(self):
        assert str(Message("x", Int32(1), ts(0), ts(1))) == "<x: 1@(0, 1]>"


class TestReservation:
    def test_fields(self):
        r = Reservation("x", ts(1), ts(2))
        assert r.is_reservation and not r.is_concrete

    def test_empty_reservation_rejected(self):
        with pytest.raises(ValueError):
            Reservation("x", ts(1), ts(1))


def test_init_message():
    m = init_message("x")
    assert m.frm == m.to == 0
    assert m.value == 0
    assert m.view == BOTTOM_VIEW
