"""Memory tests: disjointness, gaps, canonical placement, capped memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.values import Int32
from repro.memory.memory import Memory, capped_memory
from repro.memory.message import Message, Reservation, init_message
from repro.memory.timestamps import GRANULE, ts

G = GRANULE


def msg(var, value, frm, to):
    return Message(var, Int32(value), ts(frm), ts(to))


class TestConstruction:
    def test_initial_memory(self):
        mem = Memory.initial(["x", "y"])
        assert len(mem) == 2
        assert mem.message_at("x", ts(0)).value == 0
        assert mem.message_at("y", ts(0)).value == 0

    def test_initial_deduplicates(self):
        assert Memory.initial(["x", "x"]) == Memory.initial(["x"])

    def test_items_sorted_canonically(self):
        a = Memory((msg("x", 1, 0, 1), msg("x", 2, 1, 2)))
        b = Memory((msg("x", 2, 1, 2), msg("x", 1, 0, 1)))
        assert a == b
        assert hash(a) == hash(b)


class TestDisjointness:
    def test_overlap_rejected(self):
        mem = Memory((msg("x", 1, 0, 2),))
        with pytest.raises(ValueError, match="overlap"):
            mem.add(msg("x", 2, 1, 3))

    def test_adjacent_allowed(self):
        mem = Memory((msg("x", 1, 0, 1),))
        mem2 = mem.add(msg("x", 2, 1, 2))
        assert len(mem2) == 2

    def test_different_locations_never_conflict(self):
        mem = Memory((msg("x", 1, 0, 2),))
        assert mem.try_add(msg("y", 2, 1, 3)) is not None

    def test_try_add_returns_none_on_overlap(self):
        mem = Memory((msg("x", 1, 0, 2),))
        assert mem.try_add(msg("x", 2, 0, 1)) is None

    def test_init_message_never_conflicts(self):
        mem = Memory((init_message("x"),))
        assert mem.try_add(msg("x", 1, 0, 1)) is not None


class TestQueries:
    def test_readable_filters_by_floor(self):
        mem = Memory((init_message("x"), msg("x", 1, 0, 1), msg("x", 2, 1, 2)))
        readable = mem.readable("x", ts(1))
        assert [int(m.value) for m in readable] == [1, 2]

    def test_latest_ts(self):
        mem = Memory((init_message("x"), msg("x", 1, 0, 1)))
        assert mem.latest_ts("x") == 1
        assert mem.latest_ts("unknown") == 0

    def test_remove(self):
        m = msg("x", 1, 0, 1)
        mem = Memory((init_message("x"), m))
        assert len(mem.remove(m)) == 1
        with pytest.raises(ValueError):
            mem.remove(m).remove(m)

    def test_concrete_skips_reservations(self):
        mem = Memory((init_message("x"), Reservation("x", ts(0), ts(1))))
        assert len(mem.concrete("x")) == 1


class TestGaps:
    def test_no_gaps_when_adjacent(self):
        mem = Memory((init_message("x"), msg("x", 1, 0, 1)))
        assert mem.gaps("x") == ()

    def test_gap_between_messages(self):
        mem = Memory((init_message("x"), msg("x", 1, 1, 2)))
        assert mem.gaps("x") == ((ts(0), ts(1)),)

    def test_multiple_gaps(self):
        mem = Memory((init_message("x"), msg("x", 1, 1, 2), msg("x", 2, 3, 4)))
        assert mem.gaps("x") == ((ts(0), ts(1)), (ts(2), ts(3)))


class TestCandidateIntervals:
    def test_append_only_when_dense(self):
        mem = Memory((init_message("x"), msg("x", 1, 0, G)))
        assert mem.candidate_intervals("x", ts(0)) == ((G, 2 * G),)

    def test_gap_candidate(self):
        mem = Memory((init_message("x"), msg("x", 1, G, 2 * G)))
        candidates = mem.candidate_intervals("x", ts(0))
        assert (ts(0), G // 2) in candidates
        assert (2 * G, 3 * G) in candidates

    def test_floor_filters_candidates(self):
        mem = Memory((init_message("x"), msg("x", 1, G, 2 * G)))
        candidates = mem.candidate_intervals("x", 2 * G)
        assert candidates == ((2 * G, 3 * G),)

    def test_gap_leaving_adds_raised_from(self):
        mem = Memory((init_message("x"),))
        plain = mem.candidate_intervals("x", ts(0))
        leaving = mem.candidate_intervals("x", ts(0), leave_gaps=True)
        assert len(leaving) == 2 * len(plain)
        assert all(frm < to for frm, to in leaving)

    def test_candidates_are_insertable(self):
        mem = Memory((init_message("x"), msg("x", 1, G, 2 * G), msg("x", 2, 3 * G, 4 * G)))
        for frm, to in mem.candidate_intervals("x", ts(0), leave_gaps=True):
            assert mem.try_add(Message("x", Int32(9), frm, to)) is not None


class TestCasInterval:
    def test_cas_adjacent_free(self):
        mem = Memory((init_message("x"),))
        assert mem.cas_interval("x", ts(0)) == (ts(0), G)

    def test_cas_blocked_by_adjacent_message(self):
        mem = Memory((init_message("x"), msg("x", 1, 0, 1)))
        assert mem.cas_interval("x", ts(0)) is None

    def test_cas_squeezes_into_gap(self):
        mem = Memory((init_message("x"), msg("x", 1, G, 2 * G)))
        interval = mem.cas_interval("x", ts(0))
        assert interval == (ts(0), G // 2)


class TestCappedMemory:
    def test_cap_fills_gaps_and_caps(self):
        mem = Memory((init_message("x"), msg("x", 1, G, 2 * G)))
        capped = capped_memory(mem)
        # gap (0,G) filled, cap (2G,3G] added
        reservations = [m for m in capped if m.is_reservation]
        assert (ts(0), G) in [(r.frm, r.to) for r in reservations]
        assert (2 * G, 3 * G) in [(r.frm, r.to) for r in reservations]

    def test_capped_memory_has_no_candidates_below_cap(self):
        """After capping, a thread can only append past the cap — the point
        of the construction (no squeezing between existing writes)."""
        mem = Memory((init_message("x"), msg("x", 1, G, 2 * G)))
        capped = capped_memory(mem)
        candidates = capped.candidate_intervals("x", ts(0))
        assert candidates == ((3 * G, 4 * G),)

    def test_cap_per_location(self):
        mem = Memory.initial(["x", "y"])
        capped = capped_memory(mem)
        assert capped.latest_ts("x") == G
        assert capped.latest_ts("y") == G


@settings(max_examples=50, deadline=None)
@given(
    placements=st.lists(
        st.tuples(st.sampled_from(["x", "y"]), st.integers(min_value=0, max_value=5)),
        max_size=8,
    )
)
def test_candidate_insertion_preserves_disjointness(placements):
    """Property: repeatedly inserting at any enumerated candidate keeps the
    memory well-formed (the canonical-placement invariant)."""
    mem = Memory.initial(["x", "y"])
    for var, choice in placements:
        candidates = mem.candidate_intervals(var, ts(0), leave_gaps=True)
        if not candidates:
            continue
        frm, to = candidates[choice % len(candidates)]
        mem = mem.add(Message(var, Int32(1), frm, to))
    # Adding via .add validates disjointness internally; reaching here with
    # a consistent per-loc ordering is the property.
    for var in ("x", "y"):
        items = mem.per_loc(var)
        for a, b in zip(items, items[1:]):
            assert a.to <= b.frm or (a.frm == a.to)
