"""The global SC view carried by Memory: preservation and semantics."""


from repro.lang.values import Int32
from repro.memory.memory import Memory, capped_memory
from repro.memory.message import Message, Reservation
from repro.memory.timemap import BOTTOM_TIMEMAP, TimeMap
from repro.memory.timestamps import ts


def test_initial_sc_view_is_bottom():
    assert Memory.initial(["x"]).sc_view == BOTTOM_TIMEMAP


def test_with_sc_view():
    mem = Memory.initial(["x"]).with_sc_view(TimeMap.of({"x": ts(3)}))
    assert mem.sc_view.get("x") == 3
    assert mem.items == Memory.initial(["x"]).items


def test_sc_view_distinguishes_states():
    """Two memories with equal items but different SC views are different
    machine states — otherwise SC-fence exchanges would be lost to
    memoization."""
    base = Memory.initial(["x"])
    bumped = base.with_sc_view(TimeMap.of({"x": ts(1)}))
    assert base != bumped
    assert hash(base) != hash(bumped) or base != bumped


def test_add_remove_preserve_sc_view():
    view = TimeMap.of({"x": ts(2)})
    mem = Memory.initial(["x"]).with_sc_view(view)
    msg = Message("x", Int32(1), ts(0), ts(1))
    added = mem.add(msg)
    assert added.sc_view == view
    assert added.remove(msg).sc_view == view
    reservation = Reservation("x", ts(1), ts(2))
    assert added.try_add(reservation).sc_view == view


def test_cap_preserves_sc_view():
    view = TimeMap.of({"x": ts(2)})
    mem = Memory.initial(["x"]).with_sc_view(view).add(Message("x", Int32(1), ts(1), ts(2)))
    assert capped_memory(mem).sc_view == view


def test_sc_fence_updates_shared_view():
    """End to end: an SC fence publishes the thread's relaxed knowledge
    into the shared SC view."""
    from repro.lang.builder import straightline_program
    from repro.lang.syntax import AccessMode, Const, Fence, FenceKind, Store
    from repro.semantics.thread import SemanticsConfig, thread_steps
    from repro.semantics.threadstate import initial_thread_state

    program = straightline_program(
        [[Store("x", Const(1), AccessMode.RLX), Fence(FenceKind.SC)]], atomics={"x"}
    )
    config = SemanticsConfig()
    state = initial_thread_state(program, "t1")
    mem = Memory.initial(["x"])
    _, state, mem = next(iter(thread_steps(program, state, mem, config)))
    assert mem.sc_view.get("x") == 0  # write alone does not publish
    _, state, mem = next(iter(thread_steps(program, state, mem, config)))
    assert mem.sc_view.get("x") == mem.latest_ts("x")  # the fence does
