"""Timestamp arithmetic tests."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.timestamps import TS_ZERO, midpoint, successor, ts


def test_zero():
    assert TS_ZERO == 0


def test_ts_constructor():
    assert ts(1) == 1
    assert ts("1/2") == Fraction(1, 2)


def test_midpoint_simple():
    assert midpoint(ts(0), ts(1)) == Fraction(1, 2)


def test_midpoint_of_empty_gap_rejected():
    with pytest.raises(ValueError):
        midpoint(ts(1), ts(1))
    with pytest.raises(ValueError):
        midpoint(ts(2), ts(1))


def test_successor():
    assert successor(ts(5)) == 6
    assert successor(Fraction(1, 2)) == Fraction(3, 2)


rationals = st.fractions(min_value=-1000, max_value=1000)


@given(rationals, rationals)
def test_midpoint_strictly_between(a, b):
    lo, hi = min(a, b), max(a, b)
    if lo == hi:
        return
    mid = midpoint(lo, hi)
    assert lo < mid < hi


@given(rationals, rationals)
def test_midpoint_is_dense(a, b):
    """Midpoints can be taken forever — density of Q."""
    lo, hi = min(a, b), max(a, b)
    if lo == hi:
        return
    m1 = midpoint(lo, hi)
    m2 = midpoint(lo, m1)
    assert lo < m2 < m1 < hi
