"""Timestamp arithmetic and renormalization tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lang.values import Int32
from repro.memory.memory import Memory
from repro.memory.message import Message, init_message
from repro.memory.timemap import TimeMap, View
from repro.memory.timestamps import (
    GRANULE,
    MIN_GAP,
    TS_ZERO,
    GapClosed,
    midpoint,
    renormalize,
    renormalize_map,
    successor,
    ts,
)


def test_zero():
    assert TS_ZERO == 0


def test_ts_constructor():
    assert ts(1) == 1
    assert ts("7") == 7


def test_midpoint_simple():
    assert midpoint(ts(0), GRANULE) == GRANULE // 2


def test_midpoint_of_empty_gap_rejected():
    with pytest.raises(ValueError):
        midpoint(ts(1), ts(1))
    with pytest.raises(ValueError):
        midpoint(ts(2), ts(1))


def test_midpoint_of_closed_gap_raises_gap_closed():
    with pytest.raises(GapClosed):
        midpoint(ts(3), ts(4))
    # GapClosed is a ValueError, so legacy handlers still catch it.
    assert issubclass(GapClosed, ValueError)


def test_successor_strides_by_granule():
    assert successor(ts(0)) == GRANULE
    assert successor(ts(5)) == 5 + GRANULE


def test_granule_supports_min_gap():
    """An appended interval leaves room for both plain and gap-leaving
    placements (width ≥ MIN_GAP) for ~32 nested halvings."""
    lo, hi = ts(0), successor(ts(0))
    depth = 0
    while hi - lo >= MIN_GAP:
        hi = midpoint(lo, hi)
        depth += 1
    assert depth >= 30


timestamps = st.lists(
    st.integers(min_value=0, max_value=1 << 48), min_size=0, max_size=12
)


@given(timestamps)
def test_renormalize_map_preserves_order_and_equality(stamps):
    mapping = renormalize_map(stamps)
    assert mapping[0] == 0
    items = sorted(mapping.items())
    for (a, fa), (b, fb) in zip(items, items[1:]):
        assert a < b
        assert fa < fb
        assert fb - fa == GRANULE  # every gap reopens to a full granule


@given(timestamps, timestamps)
def test_renormalize_map_is_a_function_of_the_set(a, b):
    """Duplicates and order do not matter — only the timestamp set."""
    assert renormalize_map(a + b) == renormalize_map(b + a + a)


def test_tight_memory_flagged_and_renormalize_reopens():
    mem = Memory((init_message("x"),))
    assert not mem.needs_renormalize
    # Gap-leaving placements leave ever-narrower unused gaps underneath;
    # keep squeezing the lowest gap until the memory flags itself tight.
    rounds = 0
    while not mem.needs_renormalize:
        assert rounds < 40, "tightness flag never tripped"
        frm, to = mem.candidate_intervals("x", TS_ZERO, leave_gaps=True)[1]
        mem = mem.add(Message("x", Int32(rounds + 1), frm, to))
        rounds += 1
    assert mem.needs_renormalize
    new_mem, views, mapping = renormalize(mem)
    assert views == ()
    assert not new_mem.needs_renormalize
    assert len(new_mem) == len(mem)
    # Same locations, same values, same relative order.
    old = [(m.var, int(m.value)) for m in mem.concrete("x")]
    new = [(m.var, int(m.value)) for m in new_mem.concrete("x")]
    assert old == new


def test_renormalize_shares_one_map_with_views():
    mem = Memory((init_message("x"), Message("x", Int32(1), 0, GRANULE)))
    tm = TimeMap((("x", GRANULE),))
    view = View(tm, tm)
    new_mem, (new_view,), mapping = renormalize(mem, [view])
    # The view still points exactly at the message's to-timestamp.
    assert new_view.trlx.get("x") == new_mem.latest_ts("x")
    assert mapping[GRANULE] == new_mem.latest_ts("x")


@given(
    st.lists(
        st.integers(min_value=0, max_value=60), min_size=0, max_size=10, unique=True
    )
)
def test_renormalize_round_trip_preserves_interval_order(starts):
    """Property: renormalizing an arbitrary (sparse, gappy) memory plus a
    view keeps the order of all timestamps and interval adjacency."""
    items = [init_message("x")]
    prev = 0
    for i, start in enumerate(sorted(starts)):
        frm = max(prev, start * GRANULE)
        to = frm + GRANULE // (i + 1)
        items.append(Message("x", Int32(i), frm, to))
        prev = to
    mem = Memory(tuple(items))
    tm = TimeMap((("x", mem.latest_ts("x")),)) if len(items) > 1 else TimeMap()
    view = View(tm, tm)
    new_mem, (new_view,), mapping = renormalize(mem, [view])
    old_items = mem.per_loc("x")
    new_items = new_mem.per_loc("x")
    assert [int(m.value) for m in old_items if m.is_concrete] == [
        int(m.value) for m in new_items if m.is_concrete
    ]
    for old_a, new_a, old_b, new_b in zip(
        old_items, new_items, old_items[1:], new_items[1:]
    ):
        # Adjacency (frm == prev.to) and gaps survive exactly.
        assert (old_b.frm == old_a.to) == (new_b.frm == new_a.to)
        assert (old_b.frm > old_a.to) == (new_b.frm > new_a.to)
    assert new_view.trlx.get("x") == new_mem.latest_ts("x") or not tm.entries
