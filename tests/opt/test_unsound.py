"""Negative experiments: the unsound transformations fail exactly as the
paper predicts."""


from repro.lang.builder import ProgramBuilder, straightline_program
from repro.lang.syntax import AccessMode, Const, Load, Skip, Store
from repro.litmus.library import fig15_program
from repro.opt.dce import DCE
from repro.opt.merge import Merge
from repro.opt.unsound import (
    NaiveDCE,
    RedundantWriteIntroduction,
    UnsoundWaWMerge,
)
from repro.races.wwrf import ww_rf
from repro.sim.refinement import check_refinement
from repro.static.certify import certify_transformation


class TestNaiveDCE:
    def test_naive_dce_eliminates_across_release(self):
        """The barrier-free analysis eliminates y := 2 in Fig. 15 — the red
        annotation of the paper."""
        source = fig15_program(False)
        out = NaiveDCE().run(source)
        assert isinstance(out.function("t1")["entry"].instrs[0], Skip)

    def test_naive_dce_breaks_refinement_on_fig15(self):
        source = fig15_program(False)
        out = NaiveDCE().run(source)
        result = check_refinement(source, out)
        assert result.definitive
        assert not result.holds
        # g() printing the stale 0 is the counterexample.
        assert (0,) in result.target_behaviors.outputs()
        assert (0,) not in result.source_behaviors.outputs()

    def test_naive_dce_agrees_with_sound_dce_without_releases(self):
        """Absent release operations the two analyses coincide."""
        program = straightline_program(
            [
                [
                    Store("a", Const(1), AccessMode.NA),
                    Store("a", Const(2), AccessMode.NA),
                    Load("r", "a", AccessMode.NA),
                ]
            ]
        )
        assert NaiveDCE().run(program) == DCE().run(program)

    def test_sound_dce_does_not_eliminate_fig15(self):
        source = fig15_program(False)
        out = DCE().run(source)
        assert not isinstance(out.function("t1")["entry"].instrs[0], Skip)


class TestRedundantWriteIntroduction:
    def composed_with_writer(self):
        """t1 only *reads* a; t2 writes it — race-free as written."""
        pb = ProgramBuilder()
        with pb.function("t1") as f:
            b = f.block("entry")
            b.load("r", "a", "na")
            b.print_("r")
            b.ret()
        with pb.function("t2") as f:
            b = f.block("entry")
            b.store("a", 2, "na")
            b.ret()
        pb.thread("t1").thread("t2")
        return pb.build()

    def test_writeback_introduced(self):
        program = self.composed_with_writer()
        out = RedundantWriteIntroduction().run(program)
        instrs = out.function("t1")["entry"].instrs
        assert instrs[1] == Store("a", __import__("repro.lang.syntax", fromlist=["Reg"]).Reg("r"), AccessMode.NA)

    def test_breaks_ww_rf_preservation(self):
        """The paper's reason category (5) is out: the target writes a
        location the source never wrote, racing with the other thread."""
        source = self.composed_with_writer()
        target = RedundantWriteIntroduction().run(source)
        assert ww_rf(source).race_free
        assert not ww_rf(target).race_free

    def test_delayed_write_set_rejects_it(self):
        """In the simulation, the introduced target write enters D but the
        source never performs it — no simulation under any invariant."""
        from repro.sim.invariant import dce_invariant, identity_invariant
        from repro.sim.simulation import check_thread_simulation

        pb = ProgramBuilder()
        with pb.function("t1") as f:
            b = f.block("entry")
            b.load("r", "a", "na")
            b.print_("r")
            b.ret()
        pb.thread("t1")
        source = pb.build()
        target = RedundantWriteIntroduction().run(source)
        for invariant in (identity_invariant(), dce_invariant()):
            result = check_thread_simulation(source, target, "t1", invariant)
            assert not result.holds, invariant


class TestUnsoundWaWMerge:
    def message_passing(self):
        """``t1: a := 1; x.rel := 1; a := 2`` — the first write to ``a``
        is the message the reader that acquires ``x = 1`` may return."""
        pb = ProgramBuilder(atomics={"x"})
        with pb.function("t1") as f:
            b = f.block("entry")
            b.store("a", 1, "na")
            b.store("x", 1, "rel")
            b.store("a", 2, "na")
            b.ret()
        with pb.function("t2") as f:
            b = f.block("entry")
            b.load("r", "x", "acq")
            b.be("r", "seen", "unseen")
            seen = f.block("seen")
            seen.load("r2", "a", "na")
            seen.print_("r2")
            seen.ret()
            unseen = f.block("unseen")
            unseen.print_(7)
            unseen.ret()
        pb.thread("t1").thread("t2")
        return pb.build()

    def test_merges_across_release(self):
        source = self.message_passing()
        out = UnsoundWaWMerge().run(source)
        assert isinstance(out.function("t1")["entry"].instrs[0], Skip)

    def test_sound_merge_refuses_the_same_elimination(self):
        source = self.message_passing()
        out = Merge().run(source)
        assert isinstance(out.function("t1")["entry"].instrs[0], Store)

    def test_breaks_refinement_across_release(self):
        """The reader that acquired ``x = 1`` must see ``a ∈ {1, 2}``;
        after the bogus merge it can read the stale initial 0."""
        source = self.message_passing()
        target = UnsoundWaWMerge().run(source)
        result = check_refinement(source, target)
        assert result.definitive
        assert not result.holds
        assert (0,) in result.target_behaviors.outputs()
        assert (0,) not in result.source_behaviors.outputs()

    def test_certifier_rejects_the_lying_profile_across_release(self):
        """The pass claims ``I_merge`` (adjacent merges only); the W1
        crossing rule catches the unexplained release-crossing drop."""
        source = self.message_passing()
        report = certify_transformation(UnsoundWaWMerge(), source)
        assert not report.certified

    def test_certifier_refuses_across_acquire_too(self):
        """Across only an acquire read the drop is crossing-clean (it is
        what DCE legally does) — but the merge profile cannot justify it,
        so certification stays inconclusive rather than CERTIFIED."""
        pb = ProgramBuilder(atomics={"x"})
        with pb.function("t1") as f:
            b = f.block("entry")
            b.store("a", 1, "na")
            b.load("g", "x", "acq")
            b.store("a", 2, "na")
            b.print_("g")
            b.ret()
        pb.thread("t1")
        source = pb.build()
        target = UnsoundWaWMerge().run(source)
        assert isinstance(target.function("t1")["entry"].instrs[0], Skip)
        report = certify_transformation(UnsoundWaWMerge(), source)
        assert not report.certified
