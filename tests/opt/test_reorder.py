"""Adjacent-instruction reordering pass tests (:mod:`repro.opt.reorder`).

The pass permutes movable non-atomic instructions inside a basic block in
the promise-free-sound directions only — loads hoist, stores sink — with
legality decided by :func:`repro.static.crossing.must_preserve_order`.
Translation validation over litmus and generated corpora is the ground
truth for its soundness."""

from repro.lang.builder import ProgramBuilder
from repro.lang.syntax import Load, Store
from repro.litmus.generator import GeneratorConfig
from repro.litmus.library import LITMUS_SUITE
from repro.opt import Reorder
from repro.opt.reorder import reorder_block
from repro.sim import validate_corpus, validate_optimizer
from repro.static.crossing import must_preserve_order


def _entry_instrs(program, fname="t1"):
    heap = program.function_map[fname]
    return heap.block_map[heap.entry].instrs


def _single(build):
    pb = ProgramBuilder(atomics={"f"})
    with pb.function("t1") as f:
        build(f)
    pb.thread("t1")
    return pb.build()


def test_load_hoists_above_independent_store():
    def t1(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.load("r", "b", "na")
        b.print_("r")
        b.ret()

    target = Reorder().run(_single(t1))
    instrs = _entry_instrs(target)
    assert isinstance(instrs[0], Load) and instrs[0].loc == "b"
    assert isinstance(instrs[1], Store) and instrs[1].loc == "a"


def test_store_sinks_below_assign():
    def t1(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.assign("r", 2)
        b.print_("r")
        b.ret()

    target = Reorder().run(_single(t1))
    instrs = _entry_instrs(target)
    assert instrs[0].dst == "r"
    assert isinstance(instrs[1], Store)


def test_no_swap_across_register_dependence():
    def t1(f):
        b = f.block("entry")
        b.assign("r", 2)
        b.store("a", "r", "na")
        b.load("s", "a", "na")
        b.print_("s")
        b.ret()

    source = _single(t1)
    assert Reorder().run(source) == source


def test_no_swap_across_same_location():
    def t1(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.load("r", "a", "na")
        b.print_("r")
        b.ret()

    source = _single(t1)
    assert Reorder().run(source) == source


def test_atomics_prints_and_fences_are_immovable():
    def t1(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("f", 1, "rel")
        b.fence("sc")
        b.print_(0)
        b.load("r", "b", "na")
        b.ret()

    source = _single(t1)
    target = Reorder().run(source)
    # The na-store cannot sink past the release store, and the na-load
    # cannot hoist above the sc fence or the print.
    assert target == source


def test_load_does_not_hoist_above_acquire():
    def t1(f):
        b = f.block("entry")
        b.load("g", "f", "acq")
        b.load("r", "a", "na")
        b.print_("r")
        b.ret()

    source = _single(t1)
    assert Reorder().run(source) == source


def test_reorder_is_idempotent():
    opt = Reorder()
    for test in LITMUS_SUITE.values():
        once = opt.run(test.program)
        assert opt.run(once) == once


def test_reorder_block_is_deterministic():
    for test in LITMUS_SUITE.values():
        for _fname, heap in test.program.functions:
            for _label, block in heap.blocks:
                assert reorder_block(block.instrs) == reorder_block(block.instrs)


def test_must_preserve_order_is_direction_sensitive():
    from repro.lang.syntax import AccessMode, Const, Int32

    acq = Load("g", "f", AccessMode.ACQ)
    na_read = Load("r", "a", AccessMode.NA)
    # R1: a na-read may not move above an acquire...
    assert must_preserve_order(acq, na_read)
    # ...but sinking it below one is roach-motel legal.
    assert not must_preserve_order(na_read, acq)
    # Writes never cross atomics in either direction.
    na_write = Store("a", Const(Int32(1)), AccessMode.NA)
    assert must_preserve_order(na_write, acq)
    assert must_preserve_order(acq, na_write)


def test_reorder_validates_on_litmus():
    opt = Reorder()
    for test in LITMUS_SUITE.values():
        report = validate_optimizer(opt, test.program)
        assert report.ok, test.name


def test_reorder_validates_on_cluster_corpus():
    config = GeneratorConfig(threads=2, instrs_per_thread=3, reorder_clusters=2)
    result = validate_corpus(Reorder(), range(12), generator_config=config)
    assert result.ok
    assert result.transformed > 0
