"""Corpus-scale translation validation (Thm. 6.6, empirically): the four
optimizers are correct on randomly generated ww-race-free programs.

These are the slowest tests in the suite (each seed is an exhaustive
behavior-set comparison); seeds are kept modest here — the benchmark
harness sweeps a larger range."""

import pytest

from repro.litmus.generator import GeneratorConfig
from repro.opt.base import compose
from repro.opt.constprop import ConstProp
from repro.opt.cse import CSE
from repro.opt.dce import DCE
from repro.opt.licm import LICM
from repro.sim.validate import validate_corpus

SMALL = GeneratorConfig(threads=2, instrs_per_thread=4, prints_per_thread=1)
SEEDS = range(8)


@pytest.mark.parametrize(
    "optimizer",
    [ConstProp(), DCE(), CSE(), LICM()],
    ids=lambda o: o.name,
)
def test_corpus_validation(optimizer):
    result = validate_corpus(optimizer, SEEDS, SMALL, check_target_wwrf=False)
    assert result.ok, str(result.failures)


def test_full_pipeline_on_corpus():
    pipeline = compose(compose(ConstProp(), CSE()), DCE())
    result = validate_corpus(pipeline, SEEDS, SMALL, check_target_wwrf=False)
    assert result.ok, str(result.failures)


def test_ww_rf_preservation_on_corpus():
    """Lemma 6.2's meta-property on a few seeds (ww-RF checks double the
    exploration cost, so fewer seeds)."""
    result = validate_corpus(DCE(), range(4), SMALL, check_target_wwrf=True)
    assert result.ok, str(result.failures)


def test_corpus_actually_transforms_something():
    """Guard against vacuity: across the seed range, at least one program
    must be changed by the pipeline."""
    pipeline = compose(compose(ConstProp(), CSE()), DCE())
    result = validate_corpus(pipeline, range(10), SMALL, check_target_wwrf=False)
    assert result.transformed > 0
