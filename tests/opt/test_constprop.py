"""ConstProp tests: folding, branch decision, soundness by refinement."""


from repro.lang.builder import ProgramBuilder, binop, straightline_program
from repro.lang.syntax import (
    AccessMode,
    Assign,
    BinOp,
    Const,
    Jmp,
    Load,
    Print,
    Reg,
    Store,
)
from repro.opt.constprop import ConstProp
from repro.sim.validate import validate_optimizer


def test_fold_register_computation():
    program = straightline_program(
        [[Assign("r", Const(2)), Assign("s", BinOp("*", Reg("r"), Const(3)))]]
    )
    out = ConstProp().run(program)
    instrs = out.function("t1")["entry"].instrs
    assert instrs[1] == Assign("s", Const(6))


def test_fold_into_store_and_print():
    program = straightline_program(
        [
            [
                Assign("r", Const(4)),
                Store("a", BinOp("+", Reg("r"), Const(1)), AccessMode.NA),
                Print(Reg("r")),
            ]
        ]
    )
    out = ConstProp().run(program)
    instrs = out.function("t1")["entry"].instrs
    assert instrs[1] == Store("a", Const(5), AccessMode.NA)
    assert instrs[2] == Print(Const(4))


def test_decided_branch_becomes_jump():
    pb = ProgramBuilder()
    f = pb.function("f")
    entry = f.block("entry")
    entry.assign("r", 1)
    entry.be(binop("==", "r", 1), "yes", "no")
    yes = f.block("yes")
    yes.print_(1)
    yes.ret()
    no = f.block("no")
    no.print_(0)
    no.ret()
    pb.thread("f")
    out = ConstProp().run(pb.build())
    assert out.function("f")["entry"].term == Jmp("yes")


def test_loaded_values_not_folded():
    program = straightline_program(
        [[Load("r", "x", AccessMode.RLX), Print(Reg("r"))]], atomics={"x"}
    )
    out = ConstProp().run(program)
    assert out == program  # nothing statically known


def test_zero_initialized_registers_fold():
    """Thread-entry functions start with all registers at 0."""
    program = straightline_program([[Print(Reg("never_set"))]])
    out = ConstProp().run(program)
    assert out.function("t1")["entry"].instrs[0] == Print(Const(0))


def test_call_target_entry_not_assumed_zero():
    pb = ProgramBuilder()
    main = pb.function("main")
    entry = main.block("entry")
    entry.assign("r", 3)
    entry.call("g", "after")
    main.block("after").ret()
    g = pb.function("g")
    g.block("entry").print_("r")
    pb.thread("main")
    out = ConstProp().run(pb.build())
    # g can be entered with r = 3: its print must not fold to 0.
    assert out.function("g")["entry"].instrs[0] == Print(Reg("r"))


def test_refinement_on_folded_program():
    program = straightline_program(
        [
            [Assign("r", Const(2)), Assign("s", BinOp("*", Reg("r"), Const(3))), Print(Reg("s"))],
            [Store("a", Const(1), AccessMode.NA)],
        ]
    )
    report = validate_optimizer(ConstProp(), program)
    assert report.ok
    assert report.changed


def test_equivalence_not_just_refinement():
    """ConstProp is trace-preserving: target ≈ source (both directions)."""
    from repro.sim.refinement import check_equivalence

    program = straightline_program(
        [[Assign("r", BinOp("+", Const(1), Const(2))), Print(Reg("r"))]]
    )
    out = ConstProp().run(program)
    fwd, bwd = check_equivalence(program, out)
    assert fwd.holds and bwd.holds
