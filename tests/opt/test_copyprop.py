"""Copy propagation tests."""


from repro.lang.builder import ProgramBuilder, binop, straightline_program
from repro.lang.syntax import (
    AccessMode,
    Assign,
    BinOp,
    Const,
    Load,
    Print,
    Reg,
    Skip,
    Store,
)
from repro.opt.base import compose
from repro.opt.copyprop import CopyProp
from repro.opt.cse import CSE
from repro.opt.dce import DCE
from repro.sim.validate import validate_optimizer


def entry_instrs(program, func="t1"):
    return program.function(func)["entry"].instrs


def test_use_replaced_by_source():
    program = straightline_program(
        [[Assign("r2", Reg("r1")), Print(Reg("r2"))]]
    )
    out = CopyProp().run(program)
    assert entry_instrs(out)[1] == Print(Reg("r1"))


def test_copy_chain_resolved():
    program = straightline_program(
        [[Assign("b", Reg("a")), Assign("c", Reg("b")), Print(Reg("c"))]]
    )
    out = CopyProp().run(program)
    assert entry_instrs(out)[2] == Print(Reg("a"))


def test_redefinition_of_source_kills():
    program = straightline_program(
        [
            [
                Assign("r2", Reg("r1")),
                Assign("r1", Const(9)),
                Print(Reg("r2")),
            ]
        ]
    )
    out = CopyProp().run(program)
    assert entry_instrs(out)[2] == Print(Reg("r2"))  # unchanged


def test_redefinition_of_copy_kills():
    program = straightline_program(
        [
            [
                Assign("r2", Reg("r1")),
                Load("r2", "a", AccessMode.NA),
                Print(Reg("r2")),
            ]
        ]
    )
    out = CopyProp().run(program)
    assert entry_instrs(out)[2] == Print(Reg("r2"))


def test_propagates_into_store_and_branch():
    pb = ProgramBuilder()
    f = pb.function("t1")
    b = f.block("entry")
    b.assign("r2", "r1")
    b.store("a", BinOp("+", Reg("r2"), Const(1)), "na")
    b.be(binop("==", "r2", 0), "yes", "no")
    f.block("yes").ret()
    f.block("no").ret()
    pb.thread("t1")
    out = CopyProp().run(pb.build())
    instrs = out.function("t1")["entry"].instrs
    assert instrs[1] == Store("a", BinOp("+", Reg("r1"), Const(1)), AccessMode.NA)
    term = out.function("t1")["entry"].term
    assert term.cond == BinOp("==", Reg("r1"), Const(0))


def test_cse_copyprop_dce_pipeline():
    """The canonical cleanup chain: CSE leaves a copy, CopyProp forwards
    it, DCE removes the now-dead copy."""
    program = straightline_program(
        [
            [
                Load("r1", "a", AccessMode.NA),
                Load("r2", "a", AccessMode.NA),
                Print(Reg("r2")),
            ]
        ]
    )
    pipeline = compose(compose(CSE(), CopyProp()), DCE())
    out = pipeline.run(program)
    instrs = entry_instrs(out)
    assert instrs[0] == Load("r1", "a", AccessMode.NA)
    assert instrs[1] == Skip()            # dead copy eliminated
    assert instrs[2] == Print(Reg("r1"))  # use forwarded
    report = validate_optimizer(pipeline, program, check_target_wwrf=False)
    assert report.ok


def test_validates_on_racy_program():
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.load("r1", "a", "na")
        b.assign("r2", "r1")
        b.print_("r2")
        b.ret()
    with pb.function("t2") as f:
        f.block("entry").store("a", 5, "na")
    pb.thread("t1").thread("t2")
    report = validate_optimizer(CopyProp(), pb.build(), check_target_wwrf=False)
    assert report.ok and report.changed


def test_verif_by_simulation():
    from repro.sim.invariant import identity_invariant
    from repro.sim.validate import verify_optimizer_by_simulation

    program = straightline_program(
        [[Assign("r2", Reg("r1")), Print(Reg("r2"))]]
    )
    results = verify_optimizer_by_simulation(CopyProp(), program, identity_invariant())
    assert all(r.holds for r in results.values())
