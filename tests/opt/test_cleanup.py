"""Cleanup pass tests: skip removal, jump threading, dead blocks."""


from repro.lang.builder import ProgramBuilder, binop, straightline_program
from repro.lang.syntax import Const, Jmp, Print, Skip
from repro.opt.base import compose
from repro.opt.cleanup import Cleanup
from repro.opt.constprop import ConstProp
from repro.opt.dce import DCE
from repro.sim.validate import validate_optimizer


def test_skips_removed():
    program = straightline_program([[Skip(), Print(Const(1)), Skip()]])
    out = Cleanup().run(program)
    assert out.function("t1")["entry"].instrs == (Print(Const(1)),)


def test_trivial_branch_collapsed():
    pb = ProgramBuilder()
    f = pb.function("f")
    entry = f.block("entry")
    entry.print_(1)  # keep the block non-empty so it survives threading
    entry.be(binop("==", "r", 0), "next", "next")
    f.block("next").ret()
    pb.thread("f")
    out = Cleanup().run(pb.build())
    assert out.function("f")["entry"].term == Jmp("next")


def test_empty_trivial_branch_block_threaded_away():
    pb = ProgramBuilder()
    f = pb.function("f")
    f.block("entry").be(binop("==", "r", 0), "next", "next")
    f.block("next").ret()
    pb.thread("f")
    out = Cleanup().run(pb.build())
    # The collapsed branch left an empty forwarder, which threading removed.
    assert out.function("f").entry == "next"


def test_jump_threading_through_empty_block():
    pb = ProgramBuilder()
    f = pb.function("f")
    f.block("entry").jmp("hop")
    f.block("hop").jmp("end")
    end = f.block("end")
    end.print_(1)
    end.ret()
    pb.thread("f")
    out = Cleanup().run(pb.build())
    heap = out.function("f")
    # entry itself is an empty forwarder: it becomes the chain's end.
    assert heap.entry == "end"
    assert "hop" not in heap


def test_unreachable_block_removed():
    pb = ProgramBuilder()
    f = pb.function("f")
    f.block("entry").ret()
    orphan = f.block("orphan")
    orphan.print_(9)
    orphan.ret()
    pb.thread("f")
    out = Cleanup().run(pb.build())
    assert "orphan" not in out.function("f")


def test_cleanup_after_constprop_removes_dead_branch():
    pb = ProgramBuilder()
    f = pb.function("f")
    entry = f.block("entry")
    entry.assign("r", 1)
    entry.be(binop("==", "r", 1), "yes", "no")
    yes = f.block("yes")
    yes.print_(1)
    yes.ret()
    no = f.block("no")
    no.print_(0)
    no.ret()
    pb.thread("f")
    pipeline = compose(ConstProp(), Cleanup())
    out = pipeline.run(pb.build())
    assert "no" not in out.function("f")


def test_cleanup_validates():
    program = straightline_program([[Skip(), Print(Const(1))]])
    report = validate_optimizer(Cleanup(), program)
    assert report.ok and report.changed


def test_dce_then_cleanup_pipeline_validates():
    from repro.litmus.library import fig16_program

    pipeline = compose(DCE(), Cleanup())
    report = validate_optimizer(pipeline, fig16_program(False))
    assert report.ok
    out = pipeline.run(fig16_program(False))
    assert not any(
        isinstance(i, Skip) for i in out.function("t1")["entry"].instrs
    )


def test_self_loop_forwarder_not_followed_forever():
    pb = ProgramBuilder()
    f = pb.function("f")
    f.block("entry").jmp("spin")
    f.block("spin").jmp("spin")
    pb.thread("f")
    out = Cleanup().run(pb.build())  # must terminate
    assert "spin" in out.function("f")
