"""Loop peeling tests: structure, trace preservation, enabling CSE."""


from repro.lang.builder import ProgramBuilder, binop
from repro.lang.cfg import Cfg
from repro.litmus.library import fig1_source
from repro.lang.syntax import AccessMode, Load
from repro.opt.base import compose
from repro.opt.cse import CSE
from repro.opt.unroll import Peel
from repro.sim.refinement import check_equivalence, check_refinement
from repro.sim.validate import validate_optimizer


def counting_loop(reads_x: bool = False):
    pb = ProgramBuilder()
    f = pb.function("f")
    entry = f.block("entry")
    entry.assign("i", 0)
    entry.jmp("loop")
    loop = f.block("loop")
    loop.be(binop("<", "i", 2), "body", "end")
    body = f.block("body")
    if reads_x:
        body.load("r", "x", "na")
    body.assign("i", binop("+", "i", 1))
    body.jmp("loop")
    end = f.block("end")
    end.print_("i")
    end.ret()
    pb.thread("f")
    return pb.build()


def test_peel_creates_copy_blocks():
    program = counting_loop()
    out = Peel().run(program)
    heap = out.function("f")
    assert "loop_p" in heap
    assert "body_p" in heap
    assert "loop" in heap  # original remains


def test_peeled_copy_feeds_into_original_loop():
    program = counting_loop()
    heap = Peel().run(program).function("f")
    # The copy's back edge lands on the ORIGINAL header.
    assert ("body_p", "loop") in list(__import__("repro.lang.cfg", fromlist=["cfg_edges"]).cfg_edges(heap))


def test_outside_edges_redirected():
    program = counting_loop()
    heap = Peel().run(program).function("f")
    cfg = Cfg.of(heap)
    assert "loop_p" in cfg.succ_map["entry"]


def test_peel_is_equivalence():
    """Peeling preserves behaviors exactly (both refinement directions)."""
    program = counting_loop()
    out = Peel().run(program)
    fwd, bwd = check_equivalence(program, out)
    assert fwd.holds and bwd.holds


def test_peel_validates_on_fig1():
    source = fig1_source(AccessMode.RLX)
    report = validate_optimizer(Peel(), source, check_target_wwrf=False)
    assert report.ok and report.changed


def test_peel_enables_cse_without_preheader():
    """After peeling, the peeled body's invariant load makes the fact
    available at the loop header, so CSE rewrites the remaining loop body
    — LICM-like effect from composition of generic passes."""
    program = counting_loop(reads_x=True)
    peeled_then_cse = compose(Peel(), CSE()).run(program)
    body = peeled_then_cse.function("f")["body"]
    # The reload targets the same register, so CSE drops it entirely.
    from repro.lang.syntax import Skip

    assert not any(isinstance(i, Load) for i in body.instrs), (
        "in-loop read should be eliminated"
    )
    assert any(isinstance(i, Skip) for i in body.instrs)
    # And the whole pipeline refines.
    assert check_refinement(program, peeled_then_cse).holds


def test_peel_idempotence_not_required_but_stable():
    """Peeling twice peels the (new) loop again — still an equivalence."""
    program = counting_loop()
    twice = Peel().run(Peel().run(program))
    fwd, bwd = check_equivalence(program, twice)
    assert fwd.holds and bwd.holds
