"""LocalDSE (the LLVM baseline) vs global DCE — paper Sec. 7.2."""

import pytest

from repro.lang.builder import ProgramBuilder, straightline_program
from repro.lang.syntax import AccessMode, Const, Load, Print, Reg, Skip, Store
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.opt.dce import DCE
from repro.opt.localdse import LocalDSE
from repro.sim.validate import validate_optimizer


def entry_instrs(program, func="t1"):
    return program.function(func)["entry"].instrs


def test_same_block_overwrite_eliminated():
    program = straightline_program(
        [
            [
                Store("a", Const(1), AccessMode.NA),
                Store("a", Const(2), AccessMode.NA),
                Load("r", "a", AccessMode.NA),
                Print(Reg("r")),
            ]
        ]
    )
    out = LocalDSE().run(program)
    assert entry_instrs(out)[0] == Skip()


def test_intervening_read_blocks():
    program = straightline_program(
        [
            [
                Store("a", Const(1), AccessMode.NA),
                Load("r", "a", AccessMode.NA),
                Store("a", Const(2), AccessMode.NA),
                Print(Reg("r")),
            ]
        ]
    )
    out = LocalDSE().run(program)
    assert entry_instrs(out)[0] == Store("a", Const(1), AccessMode.NA)


def test_release_write_blocks():
    """The weak-memory rule applies locally too."""
    pb = ProgramBuilder(atomics={"x"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("x", 1, "rel")
        b.store("a", 2, "na")
        b.ret()
    pb.thread("t1")
    out = LocalDSE().run(pb.build())
    assert entry_instrs(out)[0] == Store("a", Const(1), AccessMode.NA)


def cross_block_dead_store():
    """A store dead only across a block boundary: LocalDSE keeps it, DCE
    eliminates it — the paper's LLVM comparison."""
    pb = ProgramBuilder()
    f = pb.function("t1")
    entry = f.block("entry")
    entry.store("a", 1, "na")
    entry.jmp("next")
    nxt = f.block("next")
    nxt.store("a", 2, "na")
    nxt.load("r", "a", "na")
    nxt.print_("r")
    nxt.ret()
    pb.thread("t1")
    return pb.build()


def test_cross_block_gap_between_local_and_global():
    program = cross_block_dead_store()
    local = LocalDSE().run(program)
    global_ = DCE().run(program)
    assert entry_instrs(local)[0] == Store("a", Const(1), AccessMode.NA)  # kept
    assert entry_instrs(global_)[0] == Skip()  # eliminated


@pytest.mark.parametrize("seed", range(10))
def test_local_subsumed_by_global(seed):
    """Every store LocalDSE removes, DCE removes too (on a corpus)."""
    program = random_wwrf_program(seed, GeneratorConfig(instrs_per_thread=8))
    local = LocalDSE().run(program)
    global_ = DCE().run(program)
    for fname, local_heap in local.functions:
        global_heap = global_.function(fname)
        for label, local_block in local_heap.blocks:
            global_block = global_heap[label]
            original = program.function(fname)[label].instrs
            for idx, local_instr in enumerate(local_block.instrs):
                if isinstance(local_instr, Skip) and not isinstance(original[idx], Skip):
                    assert isinstance(global_block.instrs[idx], Skip), (fname, label, idx)


def test_localdse_validates():
    report = validate_optimizer(LocalDSE(), cross_block_dead_store())
    assert report.ok


def test_localdse_validates_on_fig15():
    from repro.litmus.library import fig15_program

    source = fig15_program(False)
    out = LocalDSE().run(source)
    # The release write blocks the local elimination: unchanged program.
    assert out == source
