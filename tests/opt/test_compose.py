"""Optimizer interface and vertical composition tests."""

import pytest

from repro.lang.builder import straightline_program
from repro.lang.syntax import Assign, BinOp, Const, Print, Reg
from repro.opt.base import Optimizer, compose, identity_optimizer
from repro.opt.constprop import ConstProp
from repro.opt.cse import CSE
from repro.opt.dce import DCE


def sample_program():
    return straightline_program(
        [
            [
                Assign("r", Const(2)),
                Assign("s", BinOp("*", Reg("r"), Const(3))),
                Assign("dead", Const(9)),
                Print(Reg("s")),
            ]
        ]
    )


def test_identity_optimizer():
    program = sample_program()
    assert identity_optimizer().run(program) == program
    assert identity_optimizer().name == "id"


def test_compose_order():
    """compose(A, B) runs A first: ConstProp then DCE eliminates the dead
    register AND folds; DCE alone only eliminates."""
    program = sample_program()
    both = compose(ConstProp(), DCE()).run(program)
    manual = DCE().run(ConstProp().run(program))
    assert both == manual


def test_composed_name():
    opt = compose(ConstProp(), DCE())
    assert opt.name == "dce∘constprop"


def test_compose_preserves_atomics_and_threads():
    program = sample_program()
    out = compose(compose(ConstProp(), CSE()), DCE()).run(program)
    assert out.atomics == program.atomics
    assert out.threads == program.threads


def test_unimplemented_base_raises():
    with pytest.raises(NotImplementedError):
        Optimizer().run_function(sample_program(), "t1")


def test_callable_sugar():
    program = sample_program()
    assert ConstProp()(program) == ConstProp().run(program)


def test_three_pass_pipeline_refines():
    from repro.sim.validate import validate_optimizer

    pipeline = compose(compose(ConstProp(), CSE()), DCE())
    report = validate_optimizer(pipeline, sample_program())
    assert report.ok
    assert report.changed
