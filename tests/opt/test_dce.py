"""DCE tests: the paper's Sec. 7.1 pass with the release barrier."""


from repro.lang.builder import ProgramBuilder, straightline_program
from repro.lang.syntax import (
    AccessMode,
    Assign,
    Const,
    Load,
    Print,
    Reg,
    Skip,
    Store,
)
from repro.litmus.library import fig15_program, fig16_program
from repro.opt.dce import DCE
from repro.sim.refinement import check_refinement
from repro.sim.validate import validate_optimizer


def entry_instrs(program, func="t1"):
    return program.function(func)["entry"].instrs


class TestElimination:
    def test_overwritten_na_store_eliminated(self):
        program = straightline_program(
            [
                [
                    Store("a", Const(1), AccessMode.NA),
                    Store("a", Const(2), AccessMode.NA),
                    Load("r", "a", AccessMode.NA),
                    Print(Reg("r")),
                ]
            ]
        )
        out = DCE().run(program)
        assert entry_instrs(out)[0] == Skip()
        assert entry_instrs(out)[1] == Store("a", Const(2), AccessMode.NA)

    def test_dead_register_assign_eliminated(self):
        program = straightline_program(
            [[Assign("unused", Const(5)), Print(Const(1))]]
        )
        out = DCE().run(program)
        assert entry_instrs(out)[0] == Skip()

    def test_dead_na_load_eliminated(self):
        program = straightline_program(
            [[Load("unused", "a", AccessMode.NA), Print(Const(1))]]
        )
        out = DCE().run(program)
        assert entry_instrs(out)[0] == Skip()

    def test_atomic_accesses_never_eliminated(self):
        program = straightline_program(
            [[Load("unused", "x", AccessMode.RLX), Store("x", Const(1), AccessMode.RLX)]],
            atomics={"x"},
        )
        out = DCE().run(program)
        assert entry_instrs(out)[0] == Load("unused", "x", AccessMode.RLX)
        assert entry_instrs(out)[1] == Store("x", Const(1), AccessMode.RLX)

    def test_used_store_kept(self):
        program = straightline_program(
            [
                [
                    Store("a", Const(1), AccessMode.NA),
                    Load("r", "a", AccessMode.NA),
                    Print(Reg("r")),
                ]
            ]
        )
        out = DCE().run(program)
        assert entry_instrs(out)[0] == Store("a", Const(1), AccessMode.NA)


class TestReleaseBarrier:
    def test_fig15_write_before_release_kept(self):
        """The paper's Fig. 15: y := 2 must survive — g() may observe it
        through the release/acquire synchronization."""
        out = DCE().run(fig15_program(False))
        assert entry_instrs(out)[0] == Store("y", Const(2), AccessMode.NA)

    def test_fig15_transformed_program_refines(self):
        report = validate_optimizer(DCE(), fig15_program(False))
        assert report.ok

    def test_hand_eliminated_fig15_fails_refinement(self):
        """The incorrect transformation (red annotation) is observably
        wrong: g() can print y's initial value 0."""
        result = check_refinement(fig15_program(False), fig15_program(True))
        assert result.definitive
        assert not result.holds

    def test_dce_crosses_relaxed_write(self):
        """y := 2 dead across a *relaxed* write of x — eliminable."""
        pb = ProgramBuilder(atomics={"x"})
        with pb.function("t1") as f:
            b = f.block("entry")
            b.store("y", 2, "na")
            b.store("x", 1, "rlx")
            b.store("y", 4, "na")
            b.load("r", "y", "na")
            b.print_("r")
            b.ret()
        pb.thread("t1")
        out = DCE().run(pb.build())
        assert entry_instrs(out)[0] == Skip()

    def test_dce_crosses_acquire_read(self):
        """Paper Sec. 7.1: DCE across an acquire read is sound."""
        pb = ProgramBuilder(atomics={"x"})
        with pb.function("t1") as f:
            b = f.block("entry")
            b.store("y", 2, "na")
            b.load("g", "x", "acq")
            b.store("y", 4, "na")
            b.load("r", "y", "na")
            b.print_("r")
            b.ret()
        pb.thread("t1")
        out = DCE().run(pb.build())
        assert entry_instrs(out)[0] == Skip()
        report = validate_optimizer(DCE(), pb.build())
        assert report.ok


class TestFig16:
    def test_fig16_shape(self):
        out = DCE().run(fig16_program(False))
        instrs = entry_instrs(out)
        assert instrs[0] == Skip()
        assert instrs[1] == Store("x", Const(2), AccessMode.NA)

    def test_fig16_refines(self):
        report = validate_optimizer(DCE(), fig16_program(False))
        assert report.ok
        assert report.changed


def test_dce_preserves_ww_race_freedom():
    """Lemma 6.2's meta-property, checked concretely."""
    program = fig15_program(False)
    report = validate_optimizer(DCE(), program)
    assert report.source_wwrf.race_free
    assert report.target_wwrf is not None and report.target_wwrf.race_free
