"""Unused plain read elimination tests: eligibility (dead + plain +
interference-free), every refusal case, the UnusedRead ⊑ DCE containment,
and end-to-end validation + tier-0 certification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.builder import ProgramBuilder
from repro.lang.syntax import Load, Skip
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.opt import DCE, UnusedRead
from repro.sim import validate_optimizer
from repro.static.certify import certify_transformation


def _program(build_t1, atomics={"x"}, extra_threads=()):
    pb = ProgramBuilder(atomics=set(atomics))
    with pb.function("t1") as f:
        build_t1(f)
    pb.thread("t1")
    for name, build in extra_threads:
        with pb.function(name) as f:
            build(f)
        pb.thread(name)
    return pb.build()


def _entry(program):
    return UnusedRead().run(program).function("t1")["entry"].instrs


def test_eliminates_dead_plain_read():
    def src(f):
        b = f.block("entry")
        b.load("u", "a", "na")
        b.assign("r1", 1)
        b.print_("r1")
        b.ret()

    instrs = _entry(_program(src))
    assert isinstance(instrs[0], Skip)


def test_keeps_live_read():
    def src(f):
        b = f.block("entry")
        b.load("r1", "a", "na")
        b.print_("r1")
        b.ret()

    instrs = _entry(_program(src))
    assert isinstance(instrs[0], Load)


def test_refuses_relaxed_read():
    """A relaxed read advances the thread's per-location view even when
    its register is dead — not eliminable by deadness alone."""

    def src(f):
        b = f.block("entry")
        b.load("u", "x", "rlx")
        b.assign("r1", 1)
        b.print_("r1")
        b.ret()

    instrs = _entry(_program(src))
    assert isinstance(instrs[0], Load)


def test_refuses_acquire_read():
    def src(f):
        b = f.block("entry")
        b.load("u", "x", "acq")
        b.assign("r1", 1)
        b.print_("r1")
        b.ret()

    instrs = _entry(_program(src))
    assert isinstance(instrs[0], Load)


def test_refuses_environment_written_location():
    """Another thread writes ``a``: the read is dead but not
    interference-free, so the pass leaves it to DCE (whose validation is
    exploration-backed)."""

    def src(f):
        b = f.block("entry")
        b.load("u", "a", "na")
        b.assign("r1", 1)
        b.print_("r1")
        b.ret()

    def writer(f):
        b = f.block("entry")
        b.store("a", 2, "na")
        b.ret()

    program = _program(src, extra_threads=(("t2", writer),))
    instrs = _entry(program)
    assert isinstance(instrs[0], Load)
    # ...while DCE, which this pass under-approximates, does drop it.
    dce_instrs = DCE().run(program).function("t1")["entry"].instrs
    assert isinstance(dce_instrs[0], Skip)


@given(seed=st.integers(min_value=0, max_value=2_000))
@settings(max_examples=20, deadline=None)
def test_unused_read_is_contained_in_dce(seed):
    """Pointwise containment: every read UnusedRead drops, DCE drops too."""
    config = GeneratorConfig(
        threads=2, instrs_per_thread=3, unused_read_sites=2
    )
    program = random_wwrf_program(seed, config)
    pruned = UnusedRead().run(program)
    dce = DCE().run(program)
    for (fname, heap), (_, dheap) in zip(pruned.functions, dce.functions):
        for (label, block), (_, dblock) in zip(heap.blocks, dheap.blocks):
            for offset, (instr, dinstr) in enumerate(
                zip(block.instrs, dblock.instrs)
            ):
                original = program.function(fname)[label].instrs[offset]
                if isinstance(instr, Skip) and not isinstance(original, Skip):
                    assert isinstance(dinstr, Skip), (fname, label, offset)


def test_validates_by_exploration():
    def src(f):
        b = f.block("entry")
        b.load("u", "a", "na")
        b.store("a", 3, "na")
        b.assign("r1", 1)
        b.print_("r1")
        b.ret()

    program = _program(src)
    out = UnusedRead().run(program)
    assert out != program
    result = validate_optimizer(UnusedRead(), program)
    assert result.ok, result


def test_certifies_tier_zero():
    def src(f):
        b = f.block("entry")
        b.load("u", "a", "na")
        b.store("a", 3, "na")
        b.assign("r1", 1)
        b.print_("r1")
        b.ret()

    report = certify_transformation(UnusedRead(), _program(src))
    assert report.certified, report
