"""LInv / LICM tests, centred on the paper's Fig. 1 and Fig. 5."""


from repro.lang.syntax import AccessMode, Load
from repro.litmus.library import fig1_source, fig1_target, fig5_program
from repro.opt.cse import CSE
from repro.opt.licm import LICM, LInv, naive_licm
from repro.sim.refinement import check_refinement
from repro.sim.validate import validate_optimizer


class TestLInv:
    def test_preheader_read_inserted(self):
        program = fig5_program("source")
        out = LInv().run(program)
        heap = out.function("t1")
        preheaders = [label for label in heap.labels() if label.endswith("_ph")]
        assert preheaders
        ph_block = heap[preheaders[0]]
        assert any(
            isinstance(i, Load) and i.loc == "x" and i.mode is AccessMode.NA
            for i in ph_block.instrs
        )

    def test_fresh_register_used(self):
        program = fig5_program("source")
        out = LInv().run(program)
        heap = out.function("t1")
        hoisted = [
            i for _, blk in heap.blocks for i in blk.instrs
            if isinstance(i, Load) and i.loc == "x"
        ]
        names = {i.dst for i in hoisted}
        assert any(name.startswith("_li") for name in names)

    def test_linv_refines(self):
        report = validate_optimizer(LInv(), fig5_program("source"))
        assert report.ok
        assert report.changed

    def test_profitable_filter_respects_acquire(self):
        src = fig1_source(AccessMode.ACQ)
        assert LInv().run(src) == src
        assert LInv(require_profitable=False).run(src) != src


class TestLICM:
    def test_licm_noop_across_acquire(self):
        """Fig. 1 with acquire spin reads: the verified LICM refuses."""
        src = fig1_source(AccessMode.ACQ)
        assert LICM().run(src) == src

    def test_licm_fires_across_relaxed(self):
        """Fig. 1 with relaxed spin reads: LICM hoists and is correct."""
        src = fig1_source(AccessMode.RLX)
        out = LICM().run(src)
        assert out != src
        report = validate_optimizer(LICM(), src)
        assert report.ok

    def test_licm_body_read_replaced(self):
        src = fig1_source(AccessMode.RLX)
        out = LICM().run(src)
        body = out.function("foo")["body"]
        assert not any(
            isinstance(i, Load) and i.loc == "y" for i in body.instrs
        ), "the in-loop read of y must be gone"

    def test_naive_licm_breaks_refinement_on_fig1(self):
        """The paper's headline counterexample: hoisting across the acquire
        read lets the target print 0 where the source can only print 1."""
        src = fig1_source(AccessMode.ACQ)
        out = naive_licm().run(src)
        result = check_refinement(src, out)
        assert result.definitive
        assert not result.holds
        assert result.counterexample is not None

    def test_naive_licm_sound_on_relaxed_variant(self):
        """On the relaxed variant even the naive pass happens to be sound —
        the acquire read was the only problem (paper Sec. 1)."""
        src = fig1_source(AccessMode.RLX)
        out = naive_licm().run(src)
        assert check_refinement(src, out).holds

    def test_hand_written_fig1_target_matches_paper(self):
        """The paper's foo_opt as hand-written code: refinement fails for
        acq, holds for rlx (independent of our optimizer)."""
        for mode, expected in ((AccessMode.ACQ, False), (AccessMode.RLX, True)):
            result = check_refinement(fig1_source(mode), fig1_target(mode))
            assert result.definitive
            assert result.holds is expected, mode


class TestVerticalComposition:
    def test_licm_equals_linv_then_cse(self):
        src = fig1_source(AccessMode.RLX)
        composed = CSE().run(LInv().run(src))
        assert LICM().run(src) == composed

    def test_fig5_pipeline(self):
        """Fig. 5: LInv introduces the hoisted read, CSE eliminates the
        body read; each stage refines the previous one."""
        source = fig5_program("source")
        after_linv = LInv().run(source)
        after_cse = CSE().run(after_linv)
        assert check_refinement(source, after_linv).holds
        assert check_refinement(after_linv, after_cse).holds
        assert check_refinement(source, after_cse).holds
