"""Merge pass tests: each Merge-lemma shape under its access-mode side
condition, the refusals, non-adjacent plain forwarding from the
stored-value fact, and end-to-end validation + tier-0 certification."""

from repro.lang.builder import ProgramBuilder
from repro.lang.syntax import (
    AccessMode,
    Assign,
    Const,
    Fence,
    FenceKind,
    Load,
    Reg,
    Skip,
    Store,
)
from repro.opt import Merge
from repro.sim import validate_optimizer
from repro.static.certify import certify_transformation


def _program(build, atomics={"x"}):
    pb = ProgramBuilder(atomics=set(atomics))
    with pb.function("t1") as f:
        build(f)
    pb.thread("t1")
    return pb.build()


def _entry(program):
    return Merge().run(program).function("t1")["entry"].instrs


class TestRaR:
    def test_same_register_second_read_dropped(self):
        def src(f):
            b = f.block("entry")
            b.load("r1", "a", "na")
            b.load("r1", "a", "na")
            b.print_("r1")
            b.ret()

        instrs = _entry(_program(src))
        assert isinstance(instrs[1], Skip)

    def test_different_register_becomes_move(self):
        def src(f):
            b = f.block("entry")
            b.load("r1", "x", "rlx")
            b.load("r2", "x", "rlx")
            b.print_("r2")
            b.ret()

        instrs = _entry(_program(src))
        assert instrs[1] == Assign("r2", Reg("r1"))

    def test_acquire_pair_merges(self):
        """Equal modes absorb: ``o' ⊑ o`` holds at acq/acq."""

        def src(f):
            b = f.block("entry")
            b.load("r1", "x", "acq")
            b.load("r2", "x", "acq")
            b.print_("r2")
            b.ret()

        instrs = _entry(_program(src))
        assert instrs[1] == Assign("r2", Reg("r1"))

    def test_refuses_acquire_after_relaxed(self):
        """A relaxed read cannot simulate the acquire's view join."""

        def src(f):
            b = f.block("entry")
            b.load("r1", "x", "rlx")
            b.load("r2", "x", "acq")
            b.print_("r2")
            b.ret()

        instrs = _entry(_program(src))
        assert isinstance(instrs[1], Load)

    def test_chains_through_rewritten_read(self):
        def src(f):
            b = f.block("entry")
            b.load("r1", "x", "rlx")
            b.load("r2", "x", "rlx")
            b.load("r3", "x", "rlx")
            b.print_("r3")
            b.ret()

        instrs = _entry(_program(src))
        assert instrs[1] == Assign("r2", Reg("r1"))
        assert instrs[2] == Assign("r3", Reg("r2"))


class TestRaW:
    def test_adjacent_plain_forwarding(self):
        def src(f):
            b = f.block("entry")
            b.store("a", 5, "na")
            b.load("r1", "a", "na")
            b.print_("r1")
            b.ret()

        instrs = _entry(_program(src))
        assert instrs[1] == Assign("r1", Const(5))

    def test_adjacent_relaxed_forwarding(self):
        def src(f):
            b = f.block("entry")
            b.store("x", 1, "rlx")
            b.load("r1", "x", "rlx")
            b.print_("r1")
            b.ret()

        instrs = _entry(_program(src))
        assert instrs[1] == Assign("r1", Const(1))

    def test_refuses_acquire_read(self):
        """Forwarding skips the acquire's view join — never legal."""

        def src(f):
            b = f.block("entry")
            b.store("x", 1, "rel")
            b.load("r1", "x", "acq")
            b.print_("r1")
            b.ret()

        instrs = _entry(_program(src))
        assert isinstance(instrs[1], Load)

    def test_nonadjacent_plain_forwarding_from_stval(self):
        """A relaxed store to another location does not kill the
        stored-value fact, so the distant plain read still forwards."""

        def src(f):
            b = f.block("entry")
            b.store("a", 5, "na")
            b.store("x", 1, "rlx")
            b.load("r1", "a", "na")
            b.print_("r1")
            b.ret()

        instrs = _entry(_program(src))
        assert instrs[2] == Assign("r1", Const(5))

    def test_stval_killed_by_acquire(self):
        """An acquire read joins another thread's view — the thread's own
        message may no longer be the one a later read returns."""

        def src(f):
            b = f.block("entry")
            b.store("a", 5, "na")
            b.load("g", "x", "acq")
            b.load("r1", "a", "na")
            b.print_("r1")
            b.ret()

        instrs = _entry(_program(src))
        assert isinstance(instrs[2], Load)

    def test_stval_killed_by_intervening_read(self):
        """A same-location read may land on a *newer* message; the fact
        no longer pins the location to the stored expression."""

        def src(f):
            b = f.block("entry")
            b.store("a", 5, "na")
            b.store("x", 1, "rlx")
            b.load("r2", "a", "na")
            b.store("x", 2, "rlx")
            b.load("r1", "a", "na")
            b.print_("r1")
            b.ret()

        instrs = _entry(_program(src))
        assert instrs[2] == Assign("r2", Const(5))  # still covered
        assert isinstance(instrs[4], Load)  # fact killed by the read


class TestWaW:
    def test_adjacent_overwrite_dropped(self):
        def src(f):
            b = f.block("entry")
            b.store("a", 1, "na")
            b.store("a", 2, "na")
            b.ret()

        instrs = _entry(_program(src))
        assert isinstance(instrs[0], Skip)
        assert instrs[1] == Store("a", Const(2), AccessMode.NA)

    def test_stronger_survivor_absorbs(self):
        def src(f):
            b = f.block("entry")
            b.store("x", 1, "rlx")
            b.store("x", 2, "rel")
            b.ret()

        instrs = _entry(_program(src))
        assert isinstance(instrs[0], Skip)

    def test_refuses_weaker_survivor(self):
        """Dropping a release keeps none of its synchronization."""

        def src(f):
            b = f.block("entry")
            b.store("x", 1, "rel")
            b.store("x", 2, "rlx")
            b.ret()

        instrs = _entry(_program(src))
        assert isinstance(instrs[0], Store)

    def test_chain_collapses_to_last_store(self):
        def src(f):
            b = f.block("entry")
            b.store("a", 1, "na")
            b.store("a", 2, "na")
            b.store("a", 3, "na")
            b.ret()

        instrs = _entry(_program(src))
        assert isinstance(instrs[0], Skip)
        assert isinstance(instrs[1], Skip)
        assert instrs[2] == Store("a", Const(3), AccessMode.NA)

    def test_refuses_nonadjacent_overwrite(self):
        """A store to another location intervenes: LocalDSE's scan would
        drop the first write, the adjacent-only merge must not."""

        def src(f):
            b = f.block("entry")
            b.store("a", 1, "na")
            b.store("b", 9, "na")
            b.store("a", 2, "na")
            b.ret()

        instrs = _entry(_program(src))
        assert isinstance(instrs[0], Store)

    def test_refuses_intervening_same_location_read(self):
        def src(f):
            b = f.block("entry")
            b.store("a", 1, "na")
            b.load("r1", "a", "na")
            b.store("a", 2, "na")
            b.print_("r1")
            b.ret()

        instrs = _entry(_program(src))
        assert isinstance(instrs[0], Store)


class TestFence:
    def _fences(self, first, second):
        def src(f):
            b = f.block("entry")
            b.fence(first)
            b.fence(second)
            b.ret()

        return _entry(_program(src))

    def test_equal_kinds_merge(self):
        for kind in ("rel", "acq", "sc"):
            instrs = self._fences(kind, kind)
            assert isinstance(instrs[0], Skip), kind
            assert instrs[1] == Fence(FenceKind(kind)), kind

    def test_sc_absorbs_weaker_neighbor(self):
        instrs = self._fences("acq", "sc")
        assert isinstance(instrs[0], Skip)
        instrs = self._fences("sc", "acq")
        assert isinstance(instrs[1], Skip)

    def test_rel_acq_pair_kept(self):
        instrs = self._fences("rel", "acq")
        assert instrs[0] == Fence(FenceKind.REL)
        assert instrs[1] == Fence(FenceKind.ACQ)


def _mixed_program():
    pb = ProgramBuilder(atomics={"x"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("a", 2, "na")
        b.load("r1", "x", "rlx")
        b.load("r2", "x", "rlx")
        b.store("b", 5, "na")
        b.load("r3", "b", "na")
        b.fence("rel")
        b.fence("rel")
        b.print_("r1")
        b.print_("r2")
        b.print_("r3")
        b.ret()
    pb.thread("t1")
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("g", "x", "acq")
        b.print_("g")
        b.ret()
    pb.thread("t2")
    return pb.build()


def test_merge_validates_by_exploration():
    program = _mixed_program()
    out = Merge().run(program)
    assert out != program
    result = validate_optimizer(Merge(), program)
    assert result.ok, result


def test_merge_certifies_tier_zero():
    program = _mixed_program()
    report = certify_transformation(Merge(), program)
    assert report.certified, report
