"""Property tests over the optimizers on generated programs:
idempotence, structure preservation, and static safety invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.syntax import AccessMode, Cas, Load, Program, Store
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.opt.base import compose
from repro.opt.cleanup import Cleanup
from repro.opt.constprop import ConstProp
from repro.opt.cse import CSE
from repro.opt.dce import DCE
from repro.opt.licm import LInv

GEN = GeneratorConfig(threads=2, instrs_per_thread=8, allow_cas=True)

seeds = st.integers(min_value=0, max_value=2000)

ALL_PASSES = [ConstProp(), CSE(), DCE(), LInv(), Cleanup()]


def atomic_accesses(program: Program):
    """Multiset of atomic accesses (the optimizers must not touch them)."""
    out = []
    for fname, heap in sorted(program.functions):
        for instr in heap.instructions():
            if isinstance(instr, (Load, Store)) and instr.mode is not AccessMode.NA:
                out.append((fname, instr))
            elif isinstance(instr, Cas):
                out.append((fname, instr))
    return out


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_passes_preserve_interface(seed):
    """Atomics set, thread list and atomic accesses survive every pass."""
    program = random_wwrf_program(seed, GEN)
    for opt in ALL_PASSES:
        out = opt.run(program)
        assert out.atomics == program.atomics, opt.name
        assert out.threads == program.threads, opt.name
        assert atomic_accesses(out) == atomic_accesses(program), opt.name


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_dce_idempotent(seed):
    program = random_wwrf_program(seed, GEN)
    once = DCE().run(program)
    assert DCE().run(once) == once


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_constprop_converges(seed):
    """ConstProp is not one-shot idempotent (folding a branch can expose
    more constants, as in CompCert), but iterating it reaches a fixpoint
    quickly: each round that changes anything must have folded a branch,
    so rounds are bounded by the branch count."""
    program = random_wwrf_program(seed, GEN)
    current = program
    branch_count = sum(
        1
        for _, heap in program.functions
        for _, block in heap.blocks
        if type(block.term).__name__ == "Be"
    )
    for _ in range(branch_count + 2):
        nxt = ConstProp().run(current)
        if nxt == current:
            return
        current = nxt
    pytest.fail("ConstProp did not converge within the branch-count bound")


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_cse_idempotent(seed):
    program = random_wwrf_program(seed, GEN)
    once = CSE().run(program)
    assert CSE().run(once) == once


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_cleanup_idempotent(seed):
    program = random_wwrf_program(seed, GEN)
    once = Cleanup().run(program)
    assert Cleanup().run(once) == once


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_dce_never_grows_code(seed):
    program = random_wwrf_program(seed, GEN)
    assert DCE().run(program).num_instructions() == program.num_instructions()
    # (DCE replaces with skip — same count; cleanup shrinks)
    cleaned = compose(DCE(), Cleanup()).run(program)
    assert cleaned.num_instructions() <= program.num_instructions()


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_linv_only_adds_na_loads(seed):
    """LInv inserts non-atomic loads into fresh registers and nothing else."""
    program = random_wwrf_program(seed, GEN)
    out = LInv().run(program)
    for (fname, heap_out) in out.functions:
        original = program.function(fname)
        orig_instrs = list(original.instructions())
        for instr in heap_out.instructions():
            if instr in orig_instrs:
                orig_instrs.remove(instr)
            else:
                assert isinstance(instr, Load)
                assert instr.mode is AccessMode.NA
                assert instr.dst.startswith("_li")
