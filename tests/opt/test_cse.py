"""CSE tests: redundant read elimination with the acquire-kill discipline."""


from repro.lang.builder import ProgramBuilder, straightline_program
from repro.lang.syntax import (
    AccessMode,
    Assign,
    BinOp,
    Const,
    Load,
    Print,
    Reg,
    Skip,
    Store,
)
from repro.opt.cse import CSE
from repro.sim.validate import validate_optimizer


def entry_instrs(program, func="t1"):
    return program.function(func)["entry"].instrs


class TestRedundantReads:
    def test_second_read_replaced_by_register(self):
        program = straightline_program(
            [
                [
                    Load("r1", "a", AccessMode.NA),
                    Load("r2", "a", AccessMode.NA),
                    Print(Reg("r1")),
                    Print(Reg("r2")),
                ]
            ]
        )
        out = CSE().run(program)
        assert entry_instrs(out)[1] == Assign("r2", Reg("r1"))

    def test_same_register_reload_becomes_skip(self):
        program = straightline_program(
            [[Load("r", "a", AccessMode.NA), Load("r", "a", AccessMode.NA), Print(Reg("r"))]]
        )
        out = CSE().run(program)
        assert entry_instrs(out)[1] == Skip()

    def test_store_forwarding(self):
        """a.na := v establishes (load v a): a following read of a can use v."""
        program = straightline_program(
            [
                [
                    Assign("v", Const(3)),
                    Store("a", Reg("v"), AccessMode.NA),
                    Load("r", "a", AccessMode.NA),
                    Print(Reg("r")),
                ]
            ]
        )
        out = CSE().run(program)
        assert entry_instrs(out)[2] == Assign("r", Reg("v"))

    def test_acquire_read_blocks_elimination(self):
        """Paper Sec. 7.2: CSE must not cross an acquire read."""
        program = straightline_program(
            [
                [
                    Load("r1", "a", AccessMode.NA),
                    Load("g", "x", AccessMode.ACQ),
                    Load("r2", "a", AccessMode.NA),
                    Print(Reg("r2")),
                ]
            ],
            atomics={"x"},
        )
        out = CSE().run(program)
        assert entry_instrs(out)[2] == Load("r2", "a", AccessMode.NA)

    def test_relaxed_read_does_not_block(self):
        program = straightline_program(
            [
                [
                    Load("r1", "a", AccessMode.NA),
                    Load("g", "x", AccessMode.RLX),
                    Load("r2", "a", AccessMode.NA),
                    Print(Reg("r1")),
                ]
            ],
            atomics={"x"},
        )
        out = CSE().run(program)
        assert entry_instrs(out)[2] == Assign("r2", Reg("r1"))

    def test_release_write_does_not_block(self):
        """Paper Sec. 7.2: CSE may cross a release write."""
        program = straightline_program(
            [
                [
                    Load("r1", "a", AccessMode.NA),
                    Store("x", Const(1), AccessMode.REL),
                    Load("r2", "a", AccessMode.NA),
                    Print(Reg("r1")),
                ]
            ],
            atomics={"x"},
        )
        out = CSE().run(program)
        assert entry_instrs(out)[2] == Assign("r2", Reg("r1"))

    def test_own_store_to_location_blocks(self):
        program = straightline_program(
            [
                [
                    Load("r1", "a", AccessMode.NA),
                    Store("a", Const(9), AccessMode.NA),
                    Load("r2", "a", AccessMode.NA),
                    Print(Reg("r2")),
                ]
            ]
        )
        out = CSE().run(program)
        assert entry_instrs(out)[2] == Load("r2", "a", AccessMode.NA)


class TestPureExpressions:
    def test_common_subexpression_reused(self):
        expr = BinOp("+", Reg("a"), Reg("b"))
        program = straightline_program(
            [[Assign("r1", expr), Assign("r2", expr), Print(Reg("r2"))]]
        )
        out = CSE().run(program)
        assert entry_instrs(out)[1] == Assign("r2", Reg("r1"))

    def test_operand_clobber_blocks_reuse(self):
        expr = BinOp("+", Reg("a"), Reg("b"))
        program = straightline_program(
            [
                [
                    Assign("r1", expr),
                    Assign("a", Const(1)),
                    Assign("r2", expr),
                    Print(Reg("r2")),
                ]
            ]
        )
        out = CSE().run(program)
        assert entry_instrs(out)[2] == Assign("r2", expr)


class TestSoundness:
    def test_cse_refines_with_racy_environment(self):
        """Redundant read elimination is sound even under rw-races: the
        eliminated read's value is one the original could have returned."""
        pb = ProgramBuilder()
        with pb.function("t1") as f:
            b = f.block("entry")
            b.load("r1", "a", "na")
            b.load("r2", "a", "na")
            b.print_("r1")
            b.print_("r2")
            b.ret()
        with pb.function("t2") as f:
            b = f.block("entry")
            b.store("a", 7, "na")
            b.ret()
        pb.thread("t1").thread("t2")
        report = validate_optimizer(CSE(), pb.build(), check_target_wwrf=False)
        assert report.changed
        assert report.refinement.holds

    def test_cse_can_remove_behaviors(self):
        """With a racy writer the two reads of the source can differ; after
        CSE they cannot — strictly fewer behaviors, still refinement."""
        from repro.semantics.exploration import behaviors

        pb = ProgramBuilder()
        with pb.function("t1") as f:
            b = f.block("entry")
            b.load("r1", "a", "na")
            b.load("r2", "a", "na")
            b.print_("r1")
            b.print_("r2")
            b.ret()
        with pb.function("t2") as f:
            f.block("entry").store("a", 7, "na")
        pb.thread("t1").thread("t2")
        source = pb.build()
        target = CSE().run(source)
        source_outs = behaviors(source).outputs()
        target_outs = behaviors(target).outputs()
        assert (0, 7) in source_outs
        assert (0, 7) not in target_outs
        assert target_outs < source_outs
