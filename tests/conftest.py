"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig


@pytest.fixture
def no_promise_config() -> SemanticsConfig:
    """The default promise-free semantics configuration."""
    return SemanticsConfig()


@pytest.fixture
def promise_config() -> SemanticsConfig:
    """A configuration with one promise per thread (enough for LB)."""
    return SemanticsConfig(promise_oracle=SyntacticPromises(budget=1, max_outstanding=1))


@pytest.fixture
def promise2_config() -> SemanticsConfig:
    """Two promises per thread — enough to pre-promise two-write NA blocks
    (needed for non-preemptive equivalence on NA-heavy programs)."""
    return SemanticsConfig(promise_oracle=SyntacticPromises(budget=2, max_outstanding=2))
