"""Adversarial-input fault isolation: a deliberate hang, a deliberate
MemoryError, and a crash in child processes must each become a structured
``ProgramOutcome`` while the batch completes and every healthy member
still gets its correct verdict (the PR's acceptance criterion)."""

import os
import time

import pytest

from repro.opt.constprop import ConstProp
from repro.robust.confidence import Confidence
from repro.robust.isolation import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OOM,
    STATUS_TIMEOUT,
    IsolationPolicy,
    isolated_validate_corpus,
    run_batch_isolated,
    run_isolated,
)
from tests.robust.conftest import build_divergent_program

FAST = IsolationPolicy(timeout_seconds=10.0, retry=False)


def _ok_task(value):
    """A healthy child task."""
    return value * 2


def _hang_task():
    """A deliberate hang (the child must be killed at the deadline)."""
    while True:
        time.sleep(0.05)


def _memory_bomb_task():
    """A deliberate allocation storm; under an rlimit it raises
    MemoryError almost immediately."""
    hoard = []
    while True:
        hoard.append(bytearray(4 * 1024 * 1024))


def _raise_task():
    """An ordinary in-child exception."""
    raise ValueError("boom")


def _crash_task():
    """A hard child death no Python handler can report."""
    os._exit(77)


class TestRunIsolated:
    def test_ok_result_ships_back(self):
        outcome = run_isolated("k", _ok_task, (21,), policy=FAST)
        assert outcome.status == STATUS_OK
        assert outcome.ok
        assert outcome.result == 42

    def test_deliberate_hang_is_timeout(self):
        policy = IsolationPolicy(timeout_seconds=0.5, retry=False)
        started = time.monotonic()
        outcome = run_isolated("hang", _hang_task, policy=policy)
        assert time.monotonic() - started < 8.0
        assert outcome.status == STATUS_TIMEOUT
        assert not outcome.ok

    def test_deliberate_memory_bomb_is_oom(self):
        policy = IsolationPolicy(timeout_seconds=30.0, memory_mb=1, retry=False)
        outcome = run_isolated("bomb", _memory_bomb_task, policy=policy)
        assert outcome.status == STATUS_OOM
        assert "MemoryError" in outcome.detail

    def test_child_exception_is_error(self):
        outcome = run_isolated("err", _raise_task, policy=FAST)
        assert outcome.status == STATUS_ERROR
        assert "ValueError" in outcome.detail

    def test_child_hard_death_is_crashed(self):
        outcome = run_isolated("crash", _crash_task, policy=FAST)
        assert outcome.status == STATUS_CRASHED
        assert "77" in outcome.detail

    def test_retry_with_smaller_bounds(self):
        """The retry hook rewrites the args; a failing first attempt is
        retried exactly once under the shrunk policy."""
        policy = IsolationPolicy(timeout_seconds=0.5, retry=True)

        def shrink(args, kwargs):
            return (1,), kwargs

        outcome = run_isolated(
            "retry", _flaky_task, (0,), policy=policy, shrink=shrink
        )
        assert outcome.ok
        assert outcome.retried
        assert outcome.result == "bounded"


def _flaky_task(mode):
    """Hangs when mode=0 (first attempt); returns when mode=1 (retry)."""
    if mode == 0:
        _hang_task()
    return "bounded"


class TestBatchSurvival:
    def test_batch_survives_hostile_members(self):
        """Hang + bomb + crash in one batch: all classified, none fatal,
        healthy members still produce results."""
        tasks = [
            ("good-1", _ok_task, (1,)),
            ("hang", _hang_task, ()),
            ("bomb", _memory_bomb_task, ()),
            ("crash", _crash_task, ()),
            ("good-2", _ok_task, (2,)),
        ]
        overrides = {
            "hang": IsolationPolicy(timeout_seconds=0.5, retry=False),
            "bomb": IsolationPolicy(timeout_seconds=30.0, memory_mb=1, retry=False),
            "crash": IsolationPolicy(timeout_seconds=10.0, retry=False),
        }
        batch = run_batch_isolated(tasks, FAST, policy_overrides=overrides)
        by_key = {o.key: o for o in batch.outcomes}
        assert by_key["good-1"].result == 2
        assert by_key["good-2"].result == 4
        assert by_key["hang"].status == STATUS_TIMEOUT
        assert by_key["bomb"].status == STATUS_OOM
        assert by_key["crash"].status == STATUS_CRASHED
        assert len(batch.failures) == 3
        assert not batch.ok


@pytest.mark.slow
class TestIsolatedCorpus:
    def test_corpus_with_hanging_and_memory_bomb_programs(self):
        """The PR acceptance criterion end-to-end: a corpus containing a
        hanging program and a memory-bomb program completes, reports both
        as isolated failures, and every other program gets its correct
        verdict — none of which may claim PROVED unless exhaustive."""
        batch = isolated_validate_corpus(
            ConstProp(),
            seeds=range(3),
            policy=IsolationPolicy(timeout_seconds=60.0, retry=False),
            programs={
                "hanging": build_divergent_program(),
                "memory-bomb": build_divergent_program(),
            },
            policy_overrides={
                "hanging": IsolationPolicy(timeout_seconds=1.0, retry=False),
                "memory-bomb": IsolationPolicy(
                    timeout_seconds=60.0, memory_mb=1, retry=False
                ),
            },
        )
        by_key = {o.key: o for o in batch.outcomes}
        assert by_key["hanging"].status == STATUS_TIMEOUT
        assert by_key["memory-bomb"].status == STATUS_OOM
        assert {o.key for o in batch.failures} == {"hanging", "memory-bomb"}
        for seed in range(3):
            outcome = by_key[seed]
            assert outcome.ok, f"seed {seed} should validate: {outcome}"
            report = outcome.result
            assert report.ok
            assert (report.confidence is Confidence.PROVED) == report.exhaustive
        assert len(batch.outcomes) == 5

    def test_hanging_program_degrades_to_bounded_on_retry(self):
        """Retry-once-with-smaller-bounds: the retry attaches a budget,
        so the hang becomes an explicit BOUNDED verdict, not a failure."""
        batch = isolated_validate_corpus(
            ConstProp(),
            policy=IsolationPolicy(timeout_seconds=4.0, retry=True),
            programs={"hanging": build_divergent_program()},
        )
        (outcome,) = batch.outcomes
        assert outcome.ok
        assert outcome.retried
        assert outcome.result.confidence is not Confidence.PROVED
        assert batch.confidence is not Confidence.PROVED
