"""Shared builders for the robustness tests: hostile programs.

``divergent_program`` has a *productive cycle* — every loop iteration
writes a fresh value, so the PS2.1 state space is infinite and an
ungoverned BFS neither terminates nor stays within memory.  It is the
canonical adversarial input for budgets, checkpoints, isolation, and the
degradation ladder.
"""

from __future__ import annotations

import pytest

from repro.lang.builder import ProgramBuilder, binop
from repro.lang.syntax import Program


def build_divergent_program() -> Program:
    """A one-thread program whose exploration diverges (see module doc)."""
    pb = ProgramBuilder(atomics={"x"})
    with pb.function("spin") as f:
        entry = f.block("entry")
        entry.jmp("loop")
        loop = f.block("loop")
        loop.load("r", "x", "rlx")
        loop.store("x", binop("+", "r", 1), "rlx")
        loop.print_("r")
        loop.jmp("loop")
    pb.thread("spin")
    return pb.build()


@pytest.fixture
def divergent_program() -> Program:
    """Fixture form of :func:`build_divergent_program`."""
    return build_divergent_program()
