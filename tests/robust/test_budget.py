"""Budget enforcement: deadlines, state caps, memory ceilings.

The satellite acceptance criterion: a litmus program with a productive
cycle must terminate under a 1-second deadline — cleanly, with a partial
result, never a hang.
"""

import time

import pytest

from repro.robust.budget import (
    Budget,
    BudgetExhausted,
    REASON_DEADLINE,
    REASON_MEMORY,
    REASON_STATES,
)
from repro.semantics.exploration import behaviors
from repro.semantics.thread import SemanticsConfig


class TestBudgetMeter:
    def test_unbounded_budget_never_trips(self):
        meter = Budget().start()
        for i in range(10_000):
            meter.tick(i)
        assert meter.exhausted_reason is None
        assert not Budget().bounded

    def test_state_cap_trips(self):
        meter = Budget(max_states=10).start()
        with pytest.raises(BudgetExhausted) as info:
            for i in range(100):
                meter.tick(i)
        assert info.value.reason == REASON_STATES
        assert meter.exhausted_reason == REASON_STATES

    def test_deadline_trips(self):
        meter = Budget(deadline_seconds=0.01).start()
        time.sleep(0.02)
        with pytest.raises(BudgetExhausted) as info:
            meter.tick(0)
        assert info.value.reason == REASON_DEADLINE

    def test_memory_ceiling_trips(self):
        budget = Budget(memory_mb=0.001, memory_check_interval=1)
        meter = budget.start()
        ballast = [bytearray(64 * 1024)]
        with pytest.raises(BudgetExhausted) as info:
            for i in range(100):
                ballast.append(bytearray(64 * 1024))
                meter.tick(i)
        assert info.value.reason == REASON_MEMORY
        meter.close()

    def test_meter_close_idempotent(self):
        meter = Budget(memory_mb=1.0).start()
        meter.close()
        meter.close()

    def test_shrink_halves_and_floors(self):
        budget = Budget(deadline_seconds=10.0, max_states=1000, memory_mb=100.0)
        small = budget.shrink()
        assert small.deadline_seconds == pytest.approx(5.0)
        assert small.max_states == 500
        assert small.memory_mb == pytest.approx(50.0)
        tiny = Budget(deadline_seconds=0.01, max_states=2, memory_mb=0.1).shrink()
        assert tiny.deadline_seconds >= 0.05
        assert tiny.max_states >= 16
        assert tiny.memory_mb >= 1.0

    def test_shrink_of_unbounded_stays_unbounded(self):
        assert Budget().shrink() == Budget()


class TestGovernedExploration:
    def test_productive_cycle_terminates_under_one_second_deadline(
        self, divergent_program
    ):
        """The headline satellite: a divergent exploration stops cleanly
        at the deadline with the partial work, instead of hanging."""
        config = SemanticsConfig(budget=Budget(deadline_seconds=1.0))
        started = time.monotonic()
        result = behaviors(divergent_program, config)
        elapsed = time.monotonic() - started
        # Build phase ≤ deadline; the fixpoint salvage gets one more
        # budget, so total is bounded by ~2× plus slack.
        assert elapsed < 5.0
        assert not result.exhaustive
        assert result.stop_reason == REASON_DEADLINE
        assert result.state_count > 0
        assert () in result.traces  # partial set is still a behavior set

    def test_memory_governed_exploration_stops(self, divergent_program):
        config = SemanticsConfig(
            budget=Budget(memory_mb=8.0, memory_check_interval=16)
        )
        result = behaviors(divergent_program, config)
        assert not result.exhaustive
        assert result.stop_reason == REASON_MEMORY

    def test_budget_on_finite_program_changes_nothing(self):
        from repro.lang.builder import straightline_program
        from repro.lang.syntax import Const, Print

        program = straightline_program([[Print(Const(1))], [Print(Const(2))]])
        plain = behaviors(program)
        governed = behaviors(
            program, SemanticsConfig(budget=Budget(deadline_seconds=60.0))
        )
        assert governed.exhaustive
        assert governed.traces == plain.traces
