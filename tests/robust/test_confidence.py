"""The confidence taxonomy and its pipeline-wide soundness invariant:
**no verdict may claim PROVED unless exploration was exhaustive**."""

from hypothesis import given
from hypothesis import strategies as st

from repro.robust.confidence import (
    Confidence,
    EXIT_BOUNDED,
    EXIT_FAILED,
    EXIT_PROVED,
    EXIT_SAMPLED,
    derive_confidence,
    exit_code,
)


class TestDeriveConfidence:
    @given(st.sampled_from([None, *Confidence]))
    def test_non_exhaustive_never_proved(self, claimed):
        """The invariant, property-tested over every possible claim."""
        assert derive_confidence(False, claimed) is not Confidence.PROVED

    def test_exhaustive_defaults_to_proved(self):
        assert derive_confidence(True) is Confidence.PROVED
        assert derive_confidence(False) is Confidence.BOUNDED

    def test_explicit_weaker_claims_are_honored(self):
        assert derive_confidence(True, Confidence.SAMPLED) is Confidence.SAMPLED
        assert derive_confidence(False, Confidence.SAMPLED) is Confidence.SAMPLED

    def test_proved_claim_downgraded_when_not_exhaustive(self):
        assert derive_confidence(False, Confidence.PROVED) is Confidence.BOUNDED


class TestWeakest:
    def test_weakest_orders_by_rank(self):
        assert (
            Confidence.weakest([Confidence.PROVED, Confidence.SAMPLED])
            is Confidence.SAMPLED
        )
        assert (
            Confidence.weakest([Confidence.PROVED, Confidence.BOUNDED])
            is Confidence.BOUNDED
        )

    def test_weakest_of_empty_is_proved(self):
        assert Confidence.weakest([]) is Confidence.PROVED

    def test_weakest_skips_none(self):
        assert Confidence.weakest([None, Confidence.BOUNDED]) is Confidence.BOUNDED


class TestExitCodes:
    def test_contract(self):
        assert exit_code(True, Confidence.PROVED) == EXIT_PROVED == 0
        assert exit_code(False, Confidence.PROVED) == EXIT_FAILED == 1
        assert exit_code(True, Confidence.BOUNDED) == EXIT_BOUNDED == 3
        assert exit_code(True, Confidence.SAMPLED) == EXIT_SAMPLED == 4

    @given(st.sampled_from(list(Confidence)))
    def test_failure_dominates_confidence(self, confidence):
        assert exit_code(False, confidence) == EXIT_FAILED


class TestReportInvariant:
    """The invariant holds at the report layer, not just the helper."""

    def test_validation_report_cannot_claim_proved_when_truncated(
        self, divergent_program
    ):
        from repro.opt.constprop import ConstProp
        from repro.robust.budget import Budget
        from repro.semantics.thread import SemanticsConfig
        from repro.sim.validate import validate_optimizer

        config = SemanticsConfig(budget=Budget(deadline_seconds=0.3))
        report = validate_optimizer(ConstProp(), divergent_program, config)
        assert not report.exhaustive
        assert report.confidence is not Confidence.PROVED
        assert "confidence=" in str(report)

    def test_race_report_confidence_tracks_exhaustiveness(self, divergent_program):
        from repro.races.wwrf import ww_rf
        from repro.robust.budget import Budget
        from repro.semantics.thread import SemanticsConfig

        config = SemanticsConfig(budget=Budget(deadline_seconds=0.3))
        report = ww_rf(divergent_program, config)
        assert not report.exhaustive
        assert report.confidence is not Confidence.PROVED

    def test_forged_proved_claim_is_downgraded(self):
        from repro.opt.constprop import ConstProp
        from repro.lang.builder import straightline_program
        from repro.lang.syntax import Const, Print
        from repro.semantics.thread import SemanticsConfig
        from repro.sim.validate import ValidationReport, validate_optimizer

        program = straightline_program([[Print(Const(1))]])
        report = validate_optimizer(
            ConstProp(), program, SemanticsConfig(max_states=2)
        )
        forged = ValidationReport(
            optimizer=report.optimizer,
            refinement=report.refinement,
            source_wwrf=report.source_wwrf,
            target_wwrf=report.target_wwrf,
            changed=report.changed,
            confidence=Confidence.PROVED,
        )
        assert forged.confidence is Confidence.BOUNDED
