"""CLI surface of the resource-governance features: ``--deadline`` /
``--memory-mb``, ``explore --checkpoint/--resume``, ``validate
--degrade``, ``fuzz --replay``, and the exit-code contract (0 PROVED,
1 FAILED, 2 usage, 3 BOUNDED, 4 SAMPLED; corrupt persisted state —
a checkpoint failing its integrity digest — also exits 4, the
weakest-evidence code, with a clear message on stderr)."""

import re

import pytest

from repro.cli import main
from repro.robust.confidence import (
    EXIT_BOUNDED,
    EXIT_CORRUPT,
    EXIT_PROVED,
    EXIT_SAMPLED,
)

DIVERGENT = """
atomics x;
fn spin {
entry:
    jmp loop;
loop:
    r := x.rlx;
    x.rlx := r + 1;
    print(r);
    jmp loop;
}
threads spin;
"""

OPTIMIZABLE = """
fn t1 {
entry:
    r := 2;
    s := r * 3;
    print(s);
    return;
}
threads t1;
"""


@pytest.fixture
def divergent_file(tmp_path):
    path = tmp_path / "divergent.rtl"
    path.write_text(DIVERGENT)
    return str(path)


@pytest.fixture
def opt_file(tmp_path):
    path = tmp_path / "opt.rtl"
    path.write_text(OPTIMIZABLE)
    return str(path)


def _states(out: str) -> int:
    return int(re.search(r"states: (\d+)", out).group(1))


class TestGovernedExplore:
    def test_deadline_exits_bounded(self, divergent_file, capsys):
        assert main(["explore", divergent_file, "--deadline", "0.4"]) == EXIT_BOUNDED
        out = capsys.readouterr().out
        assert "TRUNCATED:deadline" in out
        assert _states(out) > 0

    def test_max_states_exits_bounded(self, divergent_file, capsys):
        assert main(["explore", divergent_file, "--max-states", "60"]) == EXIT_BOUNDED
        assert "TRUNCATED:states" in capsys.readouterr().out

    def test_finite_program_still_proved(self, opt_file, capsys):
        assert main(["explore", opt_file, "--deadline", "30"]) == EXIT_PROVED
        assert "exhaustive" in capsys.readouterr().out


class TestCheckpointResume:
    def test_checkpoint_then_resume_makes_progress(self, divergent_file, tmp_path, capsys):
        ckpt = str(tmp_path / "run.ckpt")
        code = main(
            ["explore", divergent_file, "--deadline", "0.3", "--checkpoint", ckpt]
        )
        assert code == EXIT_BOUNDED
        first = capsys.readouterr().out
        assert f"--resume {ckpt}" in first
        code = main(
            ["explore", divergent_file, "--resume", ckpt, "--deadline", "0.3"]
        )
        assert code == EXIT_BOUNDED
        second = capsys.readouterr().out
        assert "resumed:" in second
        assert _states(second) >= _states(first)

    def test_corrupt_checkpoint_exits_4(self, divergent_file, tmp_path, capsys):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"garbage")
        code = main(["explore", divergent_file, "--resume", str(bad)])
        assert code == EXIT_CORRUPT
        err = capsys.readouterr().err
        assert "checkpoint error" in err and "corrupt" in err

    def test_truncated_checkpoint_exits_4(self, divergent_file, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt"
        main(["explore", divergent_file, "--deadline", "0.3",
              "--checkpoint", str(ckpt)])
        capsys.readouterr()
        blob = ckpt.read_bytes()
        ckpt.write_bytes(blob[: len(blob) // 2])  # torn write
        code = main(["explore", divergent_file, "--resume", str(ckpt)])
        assert code == EXIT_CORRUPT
        assert "checkpoint error" in capsys.readouterr().err

    def test_bitflipped_checkpoint_exits_4(self, divergent_file, tmp_path, capsys):
        from repro.robust.chaos import corrupt_file

        ckpt = tmp_path / "run.ckpt"
        main(["explore", divergent_file, "--deadline", "0.3",
              "--checkpoint", str(ckpt)])
        capsys.readouterr()
        corrupt_file(str(ckpt), seed=7)
        code = main(["explore", divergent_file, "--resume", str(ckpt)])
        assert code == EXIT_CORRUPT
        assert "checkpoint error" in capsys.readouterr().err

    def test_resume_wrong_program_exits_4(self, divergent_file, opt_file, tmp_path, capsys):
        ckpt = str(tmp_path / "run.ckpt")
        main(["explore", divergent_file, "--deadline", "0.3", "--checkpoint", ckpt])
        capsys.readouterr()
        code = main(["explore", opt_file, "--resume", ckpt])
        assert code == EXIT_CORRUPT
        assert "checkpoint error" in capsys.readouterr().err


class TestGovernedVerdicts:
    def test_truncated_races_exit_bounded_with_warning(self, divergent_file, capsys):
        code = main(["races", divergent_file, "--deadline", "0.3"])
        assert code == EXIT_BOUNDED
        assert "not proved" in capsys.readouterr().out

    def test_validate_degrades_instead_of_truncating(self, divergent_file, capsys):
        code = main(
            ["validate", divergent_file, "--opt", "constprop", "--degrade",
             "--deadline", "0.5"]
        )
        assert code in (EXIT_BOUNDED, EXIT_SAMPLED)
        out = capsys.readouterr().out
        assert "confidence=" in out
        assert "not a proof" in out

    def test_validate_finite_program_is_proof(self, opt_file, capsys):
        code = main(
            ["validate", opt_file, "--opt", "constprop", "--degrade",
             "--deadline", "30"]
        )
        assert code == EXIT_PROVED
        assert "[OK]" in capsys.readouterr().out


class TestFuzzReplay:
    def test_replay_regenerates_one_case(self, capsys):
        code = main(["fuzz", "--opt", "constprop", "--replay", "3"])
        out = capsys.readouterr().out
        assert "threads" in out  # the regenerated program is printed
        assert code in (EXIT_PROVED, EXIT_BOUNDED)

    def test_replay_matches_campaign_verdict(self, capsys):
        assert main(["fuzz", "--opt", "constprop", "--seeds", "3:4"]) == 0
        campaign = capsys.readouterr().out
        main(["fuzz", "--opt", "constprop", "--replay", "3"])
        assert "OK" in campaign
