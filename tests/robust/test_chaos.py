"""The fault-injection harness itself: rule matching, determinism,
delivery, and the data-fault helpers.

Chaos tests elsewhere rely on these exact semantics — a fault that fires
twice when the rule says once, or differently across processes for the
same seed, silently weakens every downstream suite.
"""

import multiprocessing
import signal
import time

import pytest

from repro.robust.chaos import (
    ChaosError,
    ChaosInjector,
    FaultRule,
    active,
    chaos_rules,
    corrupt_file,
    fault_point,
    install,
    schedule,
    truncate_file,
    uninstall,
)


class TestRuleMatching:
    def test_exact_site(self):
        rule = FaultRule("store.put", kind="error")
        assert rule.matches_site("store.put")
        assert not rule.matches_site("store.get")

    def test_prefix_site(self):
        rule = FaultRule("store.*", kind="error")
        assert rule.matches_site("store.put")
        assert rule.matches_site("store.evict")
        assert not rule.matches_site("pool.worker")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("x", kind="nuke")

    def test_key_filter(self):
        injector = ChaosInjector(rules=(FaultRule("s", kind="error", key="a"),))
        injector.at("s", key="b")  # no fault: wrong key
        with pytest.raises(ChaosError):
            injector.at("s", key="a")

    def test_after_skips_first_hits(self):
        injector = ChaosInjector(rules=(FaultRule("s", kind="error", after=2,
                                                  count=None),))
        injector.at("s")
        injector.at("s")
        with pytest.raises(ChaosError):
            injector.at("s")

    def test_count_bounds_firings(self):
        injector = ChaosInjector(rules=(FaultRule("s", kind="error", count=1),))
        with pytest.raises(ChaosError):
            injector.at("s")
        injector.at("s")  # spent
        assert injector.injected == {"s": 1}
        assert injector.hits == {"s": 2}


class TestDeterminism:
    def test_probability_draws_replay_from_seed(self):
        def decisions(seed):
            injector = ChaosInjector(
                rules=(FaultRule("s", kind="error", probability=0.3, count=None),),
                seed=seed,
            )
            fired = []
            for _ in range(50):
                try:
                    injector.at("s", key="k")
                    fired.append(False)
                except ChaosError:
                    fired.append(True)
            return fired

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)  # astronomically unlikely to tie

    def test_schedule_rates_are_roughly_honored(self):
        injector = schedule(seed=3, sites=("s",), kill_rate=0.0, oom_rate=0.1)
        oom = 0
        for _ in range(400):
            try:
                injector.at("s", key="k")
            except MemoryError:
                oom += 1
        assert 15 <= oom <= 75  # ~40 expected; the draw is hash-uniform

    def test_schedule_cap(self):
        injector = schedule(seed=3, sites=("s",), oom_rate=1.0,
                            max_faults_per_site=2)
        faults = 0
        for _ in range(10):
            try:
                injector.at("s")
            except MemoryError:
                faults += 1
        assert faults == 2


class TestDelivery:
    def test_error_raises_chaos_error(self):
        with chaos_rules(FaultRule("s", kind="error")):
            with pytest.raises(ChaosError):
                fault_point("s")

    def test_oom_raises_memory_error(self):
        with chaos_rules(FaultRule("s", kind="oom")):
            with pytest.raises(MemoryError):
                fault_point("s")

    def test_delay_sleeps(self):
        with chaos_rules(FaultRule("s", kind="delay", delay_seconds=0.05)):
            started = time.monotonic()
            fault_point("s")
            assert time.monotonic() - started >= 0.04

    def test_kill_is_sigkill(self):
        def victim():
            install(ChaosInjector(rules=(FaultRule("s", kind="kill"),)))
            fault_point("s")

        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=victim)
        child.start()
        child.join()
        assert child.exitcode == -signal.SIGKILL


class TestInstallation:
    def test_fault_point_is_noop_without_injector(self):
        uninstall()
        fault_point("anything")  # must not raise

    def test_context_manager_installs_and_removes(self):
        assert active() is None
        with chaos_rules(FaultRule("s", kind="error")) as injector:
            assert active() is injector
        assert active() is None

    def test_injector_counts_hits_even_when_nothing_fires(self):
        with chaos_rules() as injector:
            fault_point("s")
            fault_point("s", key="k")
        assert injector.hits == {"s": 2}
        assert injector.injected == {}


class TestDataFaults:
    def test_corrupt_file_flips_exactly_one_byte(self, tmp_path):
        path = tmp_path / "blob"
        payload = bytes(range(200))
        path.write_bytes(payload)
        offset = corrupt_file(str(path), seed=11)
        after = path.read_bytes()
        assert len(after) == len(payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, after)) if a != b]
        assert diffs == [offset]

    def test_corrupt_file_is_seed_deterministic(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(b"x" * 100)
        b.write_bytes(b"x" * 100)
        # Offset depends on the path, so compare one path re-corrupted.
        first = corrupt_file(str(a), seed=5)
        a.write_bytes(b"x" * 100)
        assert corrupt_file(str(a), seed=5) == first

    def test_truncate_file_tears(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"y" * 100)
        kept = truncate_file(str(path), fraction=0.3)
        assert kept == 30
        assert path.read_bytes() == b"y" * 30
