"""Checkpoint/resume: integrity, compatibility, and the round-trip
property — an interrupted-then-resumed exploration reaches the identical
``BehaviorSet`` as an uninterrupted run."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.robust.budget import Budget
from repro.robust.checkpoint import (
    CheckpointError,
    checkpoint_from_bytes,
    checkpoint_to_bytes,
    load_checkpoint,
    save_checkpoint,
)
from repro.semantics.exploration import Explorer
from repro.semantics.thread import SemanticsConfig


def interrupt_and_resume(program, max_states_first: int):
    """Build under a state-count budget, snapshot, resume, finish."""
    first = Explorer(program, SemanticsConfig(), nonpreemptive=False)
    first.build(meter=Budget(max_states=max_states_first).start())
    checkpoint = first.snapshot()
    resumed = Explorer.resume(checkpoint, program)
    return first, checkpoint, resumed.behaviors()


class TestRoundTrip:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=40))
    def test_interrupted_resume_reaches_identical_behaviors(self, seed):
        """The headline property over generated concurrent programs."""
        program = random_wwrf_program(seed, GeneratorConfig())
        uninterrupted = Explorer(program, SemanticsConfig()).behaviors()
        first, checkpoint, resumed = interrupt_and_resume(program, max_states_first=5)
        assert not first.exhaustive or not checkpoint.frontier
        assert resumed.exhaustive == uninterrupted.exhaustive
        assert resumed.traces == uninterrupted.traces
        assert resumed.state_count == uninterrupted.state_count

    def test_resume_through_file(self, tmp_path, divergent_program):
        explorer = Explorer(divergent_program, SemanticsConfig())
        explorer.build(meter=Budget(max_states=50).start())
        path = str(tmp_path / "exploration.ckpt")
        save_checkpoint(explorer.snapshot(), path)
        loaded = load_checkpoint(path)
        assert loaded.state_count == len(explorer.states)
        resumed = Explorer.resume(loaded, divergent_program)
        resumed.build(meter=Budget(max_states=200).start())
        assert len(resumed.states) > loaded.state_count

    def test_build_writes_periodic_checkpoints(self, tmp_path, divergent_program):
        path = str(tmp_path / "periodic.ckpt")
        explorer = Explorer(divergent_program, SemanticsConfig())
        explorer.build(
            meter=Budget(max_states=120).start(),
            checkpoint_path=path,
            checkpoint_interval=25,
        )
        loaded = load_checkpoint(path)
        assert loaded.state_count > 0
        assert loaded.frontier  # interrupted mid-BFS: resumable


class TestIntegrity:
    def test_bytes_round_trip(self, divergent_program):
        explorer = Explorer(divergent_program, SemanticsConfig())
        explorer.build(meter=Budget(max_states=20).start())
        checkpoint = explorer.snapshot()
        assert checkpoint_from_bytes(checkpoint_to_bytes(checkpoint)) == checkpoint

    def test_corrupted_payload_fails_loudly(self, divergent_program):
        explorer = Explorer(divergent_program, SemanticsConfig())
        explorer.build(meter=Budget(max_states=20).start())
        blob = bytearray(checkpoint_to_bytes(explorer.snapshot()))
        blob[-1] ^= 0xFF
        with pytest.raises(CheckpointError, match="digest"):
            checkpoint_from_bytes(bytes(blob))

    def test_missing_header_fails_loudly(self):
        with pytest.raises(CheckpointError):
            checkpoint_from_bytes(b"not-a-checkpoint-at-all")

    def test_non_checkpoint_pickle_rejected(self):
        import hashlib
        import pickle

        payload = pickle.dumps({"not": "a checkpoint"})
        digest = hashlib.sha256(payload).hexdigest().encode()
        with pytest.raises(CheckpointError, match="not ExplorationCheckpoint"):
            checkpoint_from_bytes(digest + b"\n" + payload)

    def test_truncated_file_fails_loudly(self, tmp_path, divergent_program):
        """A torn write (file cut mid-payload) is a typed error at load."""
        from repro.robust.chaos import truncate_file

        explorer = Explorer(divergent_program, SemanticsConfig())
        explorer.build(meter=Budget(max_states=20).start())
        path = str(tmp_path / "torn.ckpt")
        save_checkpoint(explorer.snapshot(), path)
        truncate_file(path, fraction=0.6)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_bitflipped_file_fails_loudly(self, tmp_path, divergent_program):
        from repro.robust.chaos import corrupt_file

        explorer = Explorer(divergent_program, SemanticsConfig())
        explorer.build(meter=Budget(max_states=20).start())
        path = str(tmp_path / "flipped.ckpt")
        save_checkpoint(explorer.snapshot(), path)
        corrupt_file(path, seed=3)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_resume_refuses_different_program(self, divergent_program):
        from repro.lang.builder import straightline_program
        from repro.lang.syntax import Const, Print

        explorer = Explorer(divergent_program, SemanticsConfig())
        explorer.build(meter=Budget(max_states=20).start())
        other = straightline_program([[Print(Const(1))]])
        with pytest.raises(CheckpointError, match="different program"):
            Explorer.resume(explorer.snapshot(), other)

    def test_dropped_truncation_survives_resume(self, divergent_program):
        """A max_states truncation dropped successors permanently — a
        resumed run must stay non-exhaustive rather than heal a hole."""
        explorer = Explorer(divergent_program, SemanticsConfig(max_states=30))
        explorer.build()
        assert not explorer.exhaustive
        resumed = Explorer.resume(explorer.snapshot(), divergent_program)
        assert not resumed.exhaustive
        assert resumed.stop_reason == "states"


def _save_then_die(checkpoint, path):
    """Child task: save a checkpoint but get SIGKILLed at the replace
    point (the ``checkpoint.save`` chaos fault point) — a mid-write crash."""
    from repro.robust.chaos import FaultRule, chaos_rules

    with chaos_rules(FaultRule("checkpoint.save", kind="kill")):
        save_checkpoint(checkpoint, path)


class TestAtomicSave:
    """ISSUE satellite: a SIGKILL mid-save can never publish a torn
    checkpoint — the previous one stays readable."""

    def test_sigkill_mid_save_leaves_old_checkpoint_readable(
        self, tmp_path, divergent_program
    ):
        import multiprocessing
        import signal

        explorer = Explorer(divergent_program, SemanticsConfig())
        explorer.build(meter=Budget(max_states=20).start())
        old = explorer.snapshot()
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(old, path)

        explorer.build(meter=Budget(max_states=60).start())
        newer = explorer.snapshot()
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_save_then_die, args=(newer, path))
        child.start()
        child.join()
        assert child.exitcode == -signal.SIGKILL

        # The kill landed after the temp write, before the publish: the
        # old checkpoint must load intact and still resume.
        loaded = load_checkpoint(path)
        assert loaded == old
        resumed = Explorer.resume(loaded, divergent_program)
        resumed.build(meter=Budget(max_states=40).start())
        assert len(resumed.states) > loaded.state_count
