"""CLI tests for the static-analysis surface: `analyze`, `races --static`,
`validate --strict`, and the truncation-honest exit code 3."""

import pytest

from repro.cli import main

SB = """
atomics x, y;
fn t1 { entry: x.rlx := 1; r1 := y.rlx; print(r1); return; }
fn t2 { entry: y.rlx := 1; r2 := x.rlx; print(r2); return; }
threads t1, t2;
"""

RACY = """
fn t1 { entry: a.na := 1; return; }
fn t2 { entry: a.na := 2; return; }
threads t1, t2;
"""

FLAG = """
atomics flag;
fn t1 { entry: a.na := 1; flag.rel := 1; return; }
fn t2 {
  spin: r := flag.acq; be r, write, spin;
  write: a.na := 2; return;
}
threads t1, t2;
"""


@pytest.fixture
def sb_file(tmp_path):
    path = tmp_path / "sb.rtl"
    path.write_text(SB)
    return str(path)


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.rtl"
    path.write_text(RACY)
    return str(path)


@pytest.fixture
def flag_file(tmp_path):
    path = tmp_path / "flag.rtl"
    path.write_text(FLAG)
    return str(path)


DEAD = """
atomics f;
fn t1 { entry: a.na := 1; a.na := 2; r := a.na; print(r); return; }
fn t2 { entry: g := f.acq; print(g); return; }
threads t1, t2;
"""


@pytest.fixture
def dead_file(tmp_path):
    path = tmp_path / "dead.rtl"
    path.write_text(DEAD)
    return str(path)


def test_analyze_clean(sb_file, capsys):
    assert main(["analyze", sb_file]) == 0
    out = capsys.readouterr().out
    assert "lint: clean" in out
    assert "race-free" in out


def test_analyze_reports_potential_race(racy_file, capsys):
    # The race verdict is advisory; lint decides the exit code.
    assert main(["analyze", racy_file]) == 0
    out = capsys.readouterr().out
    assert "potential-race" in out
    assert "no release/acquire protection" in out


def test_races_static_discharges(sb_file, capsys):
    assert main(["races", "--static", sb_file]) == 0
    out = capsys.readouterr().out
    assert "static" in out
    assert "0 states" in out  # no exploration happened


def test_races_static_falls_back_on_racy(racy_file, capsys):
    assert main(["races", "--static", racy_file]) == 1
    out = capsys.readouterr().out
    assert "potential-race" in out
    assert "RACY" in out


def test_races_static_flag_protocol(flag_file, capsys):
    assert main(["races", "--static", flag_file]) == 0
    out = capsys.readouterr().out
    assert "0 states" in out


def test_truncated_run_exits_3(sb_file, capsys):
    assert main(["races", "--max-states", "2", sb_file]) == 3
    out = capsys.readouterr().out
    assert "TRUNCATED" in out


def test_truncated_validate_exits_3(sb_file, capsys):
    assert main(["validate", "--opt", "dce", "--max-states", "2", sb_file]) == 3
    out = capsys.readouterr().out
    assert "TRUNCATED" in out


def test_validate_strict_ok(sb_file, capsys):
    assert main(["validate", "--strict", "--opt", "dce", sb_file]) == 0
    assert "strict(dce)" in capsys.readouterr().out


def test_exhaustive_runs_still_exit_0(sb_file):
    assert main(["races", sb_file]) == 0
    assert main(["validate", "--opt", "dce", sb_file]) == 0


# -- crossing matrix + tiered validation (tier 0) --------------------------


def test_analyze_prints_crossing_matrix(sb_file, capsys):
    assert main(["analyze", sb_file]) == 0
    out = capsys.readouterr().out
    assert "crossing matrix:" in out
    for name in ("constprop", "cse", "dce", "reorder"):
        assert name in out


def test_analyze_json_has_crossing_section(sb_file, capsys):
    import json

    assert main(["analyze", "--json", sb_file]) == 0
    payload = json.loads(capsys.readouterr().out)
    crossing = payload["crossing"]
    assert "dce" in crossing and "reorder" in crossing
    for entry in crossing.values():
        assert entry["verdict"] in ("clean", "inconclusive", "violations", "error")
        assert "seconds" in entry and "changed" in entry
    assert "crossing_s" in payload["timings"]


def test_validate_static_tier_certifies(dead_file, capsys):
    assert main(["validate", "--opt", "dce", "--static-tier", dead_file]) == 0
    out = capsys.readouterr().out
    assert "statically certified" in out
    assert "static-certify" in out


def test_validate_static_tier_falls_back(sb_file, capsys):
    """cleanup restructures the CFG beyond what OG discharges — the ladder
    must fall back to exploration and still exit 0."""
    assert main(["validate", "--opt", "reorder", "--static-tier", sb_file]) == 0
    out = capsys.readouterr().out
    assert "tier" in out or "statically certified" in out


def test_validate_without_flag_is_unchanged(dead_file, capsys):
    assert main(["validate", "--opt", "dce", dead_file]) == 0
    out = capsys.readouterr().out
    assert "statically certified" not in out
