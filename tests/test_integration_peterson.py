"""Integration test: Peterson's lock across the three semantics levels
(see examples/peterson.py for the narrative)."""


from repro import behaviors, lower_program, parse_csimp, ww_rf
from repro.semantics.sc import sc_behaviors

PETERSON = """
atomics flag0, flag1, turn, incs;

fn t0() {{
    flag0.rel = 1;
    turn.rel = 1;
    {fence}
    while ((flag1.acq == 1) * (turn.acq == 1));
    q0 = cas.rlx.rlx(incs, 0, 1);
    print(q0);
    c.na = c.na + 1;
    incs.rlx = 0;
    flag0.rel = 0;
}}

fn t1() {{
    flag1.rel = 1;
    turn.rel = 0;
    {fence}
    while ((flag0.acq == 1) * (turn.acq == 0));
    q1 = cas.rlx.rlx(incs, 0, 1);
    print(q1);
    c.na = c.na + 1;
    incs.rlx = 0;
    flag1.rel = 0;
}}

threads t0, t1;
"""


def build(fence: str = ""):
    return lower_program(parse_csimp(PETERSON.format(fence=fence)))


def canary_failed(outcomes) -> bool:
    return any(0 in outcome for outcome in outcomes)


def test_peterson_correct_under_sc():
    result = sc_behaviors(build())
    assert result.exhaustive
    assert not canary_failed(result.outputs())
    # Deadlock freedom under SC: complete executions exist.
    assert result.outputs()


def test_peterson_broken_under_relacq():
    result = behaviors(build(""))
    assert result.exhaustive
    assert canary_failed(result.outputs())


def test_sc_fences_do_not_rescue_peterson():
    """The `turn` stores precede both fences, so the fences impose no
    modification-order constraint between them — one thread can read the
    other's stale giveaway and enter concurrently.  The fragment has no SC
    accesses (paper Sec. 1), so textbook Peterson is not expressible."""
    result = behaviors(build("fence.sc;"))
    assert result.exhaustive
    assert canary_failed(result.outputs())


def test_race_detector_agrees_with_canary():
    for fence in ("", "fence.sc;"):
        assert not ww_rf(build(fence)).race_free


def test_fences_constrain_executions():
    """The fences are not useless: they forbid the flag-based SB entry
    path, shrinking the reachable state graph — but the turn-based entry
    hole keeps every *observable* outcome reachable, so the trace sets
    coincide (which is exactly why the fences don't fix the lock)."""
    unfenced = behaviors(build(""))
    fenced = behaviors(build("fence.sc;"))
    assert fenced.traces <= unfenced.traces
    assert fenced.state_count < unfenced.state_count
