"""Generator tests: determinism, shape, and the ww-RF-by-construction
guarantee (property-tested against the actual race detector)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.syntax import AccessMode, Cas, Load, Store
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.opt import Merge, UnusedRead
from repro.races.wwrf import ww_rf
from repro.semantics.thread import SemanticsConfig


def test_deterministic_by_seed():
    assert random_wwrf_program(5) == random_wwrf_program(5)
    assert random_wwrf_program(5) != random_wwrf_program(6)


def test_thread_count_respected():
    config = GeneratorConfig(threads=3)
    program = random_wwrf_program(0, config)
    assert len(program.threads) == 3


def test_na_ownership_discipline():
    """Each non-atomic location is written by at most one thread's code —
    the static guarantee behind ww-RF."""
    for seed in range(20):
        program = random_wwrf_program(seed)
        writers: dict = {}
        for fname, heap in program.functions:
            for instr in heap.instructions():
                if isinstance(instr, Store) and instr.mode is AccessMode.NA:
                    writers.setdefault(instr.loc, set()).add(fname)
        for loc, funcs in writers.items():
            assert len(funcs) == 1, (loc, funcs)


def test_cas_only_on_atomics():
    config = GeneratorConfig(allow_cas=True, instrs_per_thread=10)
    for seed in range(10):
        program = random_wwrf_program(seed, config)
        for _, heap in program.functions:
            for instr in heap.instructions():
                if isinstance(instr, Cas):
                    assert instr.loc in program.atomics


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_generated_programs_are_ww_race_free(seed):
    """The semantic check agrees with the by-construction guarantee."""
    config = GeneratorConfig(threads=2, instrs_per_thread=4)
    program = random_wwrf_program(seed, config)
    report = ww_rf(program, SemanticsConfig())
    assert report.race_free


def test_merge_clusters_give_the_merge_pass_work():
    """Every merge cluster emits a mergeable adjacent pair (a fence pair
    when the thread owns no location), so the pass always fires."""
    config = GeneratorConfig(instrs_per_thread=2, merge_clusters=2)
    for seed in range(10):
        program = random_wwrf_program(seed, config)
        assert Merge().run(program) != program, seed


def test_unused_read_sites_are_all_eliminable():
    """The generated ``u*`` reads are plain, dead (outside the print
    pool) and interference-free (owned locations) — the unused-read pass
    drops every one."""
    config = GeneratorConfig(instrs_per_thread=2, unused_read_sites=2)
    saw_site = False
    for seed in range(10):
        program = random_wwrf_program(seed, config)
        for _, heap in program.functions:
            if any(
                isinstance(i, Load) and i.dst.startswith("u")
                for i in heap.instructions()
            ):
                saw_site = True
        out = UnusedRead().run(program)
        for _, heap in out.functions:
            for instr in heap.instructions():
                assert not (isinstance(instr, Load) and instr.dst.startswith("u"))
    assert saw_site


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_merge_corpus_stays_ww_race_free(seed):
    """The new knobs only touch owned locations — the by-construction
    ww-RF guarantee survives them."""
    config = GeneratorConfig(
        threads=2, instrs_per_thread=3, merge_clusters=1, unused_read_sites=1
    )
    report = ww_rf(random_wwrf_program(seed, config), SemanticsConfig())
    assert report.race_free


def test_no_branch_mode():
    config = GeneratorConfig(allow_branches=False, instrs_per_thread=10)
    program = random_wwrf_program(3, config)
    for _, heap in program.functions:
        assert len(heap.labels()) == 1  # straight-line only
