"""Litmus library sanity tests."""

import pytest

from repro.lang.syntax import Program
from repro.litmus.library import (
    LITMUS_SUITE,
    fig1_program,
    fig5_program,
    fig15_program,
    fig16_program,
    reorder_program,
)


def test_suite_nonempty_and_typed():
    assert len(LITMUS_SUITE) >= 12
    for name, test in LITMUS_SUITE.items():
        assert isinstance(test.program, Program), name
        assert test.description


def test_suite_names_match_keys():
    for name, test in LITMUS_SUITE.items():
        assert test.name == name


def test_fig1_program_dispatch():
    assert fig1_program(hoisted=False) == fig1_program(hoisted=False)
    assert fig1_program(hoisted=True) != fig1_program(hoisted=False)


def test_fig5_stages_differ():
    source = fig5_program("source")
    linv = fig5_program("linv")
    cse = fig5_program("cse")
    assert len({source, linv, cse}) == 3
    with pytest.raises(ValueError):
        fig5_program("bogus")


def test_fig15_variants_differ():
    assert fig15_program(False) != fig15_program(True)


def test_fig16_variants_differ():
    assert fig16_program(False) != fig16_program(True)


def test_reorder_variants_differ():
    assert reorder_program(False) != reorder_program(True)


def test_all_programs_well_formed():
    """Construction already validates modes; spot-check atomics usage."""
    for name, test in LITMUS_SUITE.items():
        program = test.program
        for loc in program.atomics:
            assert loc in program.locations() or True  # atomics declared


def test_promise_budget_positive_where_needed():
    for test in LITMUS_SUITE.values():
        if test.needs_promises:
            assert test.promise_budget >= 1
