"""Litmus spec layer tests."""

import pytest

from repro.litmus.spec import LitmusSpec, check_spec, parse_spec, run_spec_file
from repro.litmus.library import lb, lb_oota, sb

SB_SPEC = """
//! name: SB
//! exists (0, 0)
//! forbidden (7, 7)
atomics x, y;
fn t1 { entry: x.rlx := 1; r1 := y.rlx; print(r1); return; }
fn t2 { entry: y.rlx := 1; r2 := x.rlx; print(r2); return; }
threads t1, t2;
"""


class TestCheckSpec:
    def test_exists_satisfied(self):
        spec = LitmusSpec(sb(), exists=((0, 0),))
        assert check_spec(spec).ok

    def test_exists_violated(self):
        spec = LitmusSpec(sb(), exists=((9, 9),))
        result = check_spec(spec)
        assert not result.ok
        assert "not observed" in result.failures[0]

    def test_forbidden_satisfied(self):
        spec = LitmusSpec(lb(), forbidden=((1, 1),))  # no promises configured
        assert check_spec(spec).ok

    def test_forbidden_violated_with_promises(self):
        spec = LitmusSpec(lb(), forbidden=((1, 1),), promises=1)
        result = check_spec(spec)
        assert not result.ok
        assert "forbidden outcome" in result.failures[0]

    def test_only_exact_set(self):
        spec = LitmusSpec(lb_oota(), only=(((0, 0)),), promises=1)
        # `only` takes tuples of outcomes; normalize: ((0,0),)
        spec = LitmusSpec(lb_oota(), only=((0, 0),), promises=1)
        assert check_spec(spec).ok

    def test_only_mismatch(self):
        spec = LitmusSpec(lb_oota(), only=((0, 0), (1, 1)), promises=1)
        result = check_spec(spec)
        assert not result.ok


class TestParseSpec:
    def test_directives_parsed(self):
        spec = parse_spec(SB_SPEC)
        assert spec.name == "SB"
        assert spec.exists == ((0, 0),)
        assert spec.forbidden == ((7, 7),)
        assert spec.promises == 0

    def test_promises_directive(self):
        spec = parse_spec("//! promises: 2\n" + SB_SPEC)
        assert spec.promises == 2

    def test_multiple_tuples_on_one_line(self):
        spec = parse_spec("//! only (0, 0) (1, 1)\n" + SB_SPEC)
        assert spec.only == ((0, 0), (1, 1))

    def test_directive_without_tuple_rejected(self):
        with pytest.raises(ValueError, match="needs at least one"):
            parse_spec("//! exists nothing\n" + SB_SPEC)

    def test_end_to_end(self):
        assert check_spec(parse_spec(SB_SPEC)).ok

    def test_empty_outcome_tuple(self):
        silent = """
//! exists ()
//! only ()
fn t1 { entry: a.na := 1; return; }
threads t1;
"""
        spec = parse_spec(silent)
        assert () in spec.exists
        assert check_spec(spec).ok


import pathlib

LITMUS_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples" / "litmus"


class TestSpecFiles:
    @pytest.mark.parametrize(
        "path", sorted(LITMUS_DIR.iterdir()), ids=lambda p: p.name
    )
    def test_example_spec_files_pass(self, path):
        result = run_spec_file(str(path))
        assert result.ok, str(result)

    def test_corpus_size(self):
        assert len(list(LITMUS_DIR.iterdir())) >= 15
