"""Unit and property tests for 32-bit machine integers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.lang.values import INT32_MAX, INT32_MIN, Int32, int32_add, int32_mul, int32_sub


class TestInt32Construction:
    def test_zero_default(self):
        assert Int32() == 0

    def test_plain_value(self):
        assert Int32(42) == 42

    def test_wraps_positive_overflow(self):
        assert Int32(2**31) == INT32_MIN

    def test_wraps_negative_overflow(self):
        assert Int32(-(2**31) - 1) == INT32_MAX

    def test_max_value_survives(self):
        assert Int32(INT32_MAX) == INT32_MAX

    def test_min_value_survives(self):
        assert Int32(INT32_MIN) == INT32_MIN

    def test_repr(self):
        assert repr(Int32(-5)) == "Int32(-5)"

    def test_equality_with_plain_int(self):
        assert Int32(-1) == -1
        assert hash(Int32(-1)) == hash(-1)


class TestArithmetic:
    def test_add_wraps(self):
        assert Int32(INT32_MAX) + Int32(1) == INT32_MIN

    def test_sub_wraps(self):
        assert Int32(INT32_MIN) - Int32(1) == INT32_MAX

    def test_mul_wraps(self):
        assert Int32(2**16) * Int32(2**16) == 0

    def test_neg(self):
        assert -Int32(5) == -5

    def test_neg_min_is_min(self):
        # Two's complement: -INT32_MIN overflows back to itself.
        assert -Int32(INT32_MIN) == INT32_MIN

    def test_radd_with_plain_int(self):
        result = 1 + Int32(2)
        assert result == 3
        assert isinstance(result, Int32)

    def test_rsub_with_plain_int(self):
        assert 10 - Int32(3) == 7


@given(st.integers(), st.integers())
def test_add_matches_c_semantics(a, b):
    expected = (a + b) & 0xFFFFFFFF
    if expected >= 2**31:
        expected -= 2**32
    assert int32_add(a, b) == expected


@given(st.integers(), st.integers())
def test_sub_then_add_roundtrip(a, b):
    assert int32_add(int32_sub(a, b), b) == Int32(a)


@given(st.integers())
def test_construction_idempotent(a):
    assert Int32(Int32(a)) == Int32(a)


@given(st.integers(min_value=INT32_MIN, max_value=INT32_MAX))
def test_in_range_values_unchanged(a):
    assert Int32(a) == a


@given(st.integers(), st.integers())
def test_mul_commutative(a, b):
    assert int32_mul(a, b) == int32_mul(b, a)
