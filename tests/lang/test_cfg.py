"""CFG utilities: successors, RPO, dominators, natural loops."""


from repro.lang.builder import ProgramBuilder, binop
from repro.lang.cfg import Cfg, block_fallthrough_chain, cfg_edges
from repro.lang.syntax import CodeHeap


def diamond_heap() -> CodeHeap:
    """entry → (then | else) → join."""
    pb = ProgramBuilder()
    f = pb.function("f")
    f.block("entry").be(binop("==", "r", 0), "then", "else_")
    then = f.block("then")
    then.skip()
    then.jmp("join")
    els = f.block("else_")
    els.skip()
    els.jmp("join")
    f.block("join").ret()
    pb.thread("f")
    return pb.build().function("f")


def loop_heap() -> CodeHeap:
    """entry → loop ⇄ body; loop → exit."""
    pb = ProgramBuilder()
    f = pb.function("f")
    f.block("entry").jmp("loop")
    f.block("loop").be(binop("<", "r", 10), "body", "exit_")
    body = f.block("body")
    body.assign("r", binop("+", "r", 1))
    body.jmp("loop")
    f.block("exit_").ret()
    pb.thread("f")
    return pb.build().function("f")


class TestCfgBasics:
    def test_successors_diamond(self):
        cfg = Cfg.of(diamond_heap())
        assert set(cfg.succ_map["entry"]) == {"then", "else_"}
        assert cfg.succ_map["join"] == ()

    def test_predecessors(self):
        cfg = Cfg.of(diamond_heap())
        preds = cfg.predecessors()
        assert set(preds["join"]) == {"then", "else_"}
        assert preds["entry"] == ()

    def test_reverse_postorder_starts_at_entry(self):
        cfg = Cfg.of(diamond_heap())
        order = cfg.reverse_postorder()
        assert order[0] == "entry"
        assert order.index("join") > order.index("then")
        assert order.index("join") > order.index("else_")

    def test_reachable(self):
        cfg = Cfg.of(diamond_heap())
        assert cfg.reachable() == frozenset({"entry", "then", "else_", "join"})

    def test_cfg_edges_iterator(self):
        edges = set(cfg_edges(diamond_heap()))
        assert ("entry", "then") in edges
        assert ("then", "join") in edges


class TestDominators:
    def test_entry_dominates_all(self):
        cfg = Cfg.of(diamond_heap())
        dom = cfg.dominators()
        for label in cfg.labels():
            assert "entry" in dom[label]

    def test_branches_do_not_dominate_join(self):
        cfg = Cfg.of(diamond_heap())
        dom = cfg.dominators()
        assert "then" not in dom["join"]
        assert "else_" not in dom["join"]

    def test_loop_header_dominates_body(self):
        cfg = Cfg.of(loop_heap())
        dom = cfg.dominators()
        assert "loop" in dom["body"]


class TestNaturalLoops:
    def test_diamond_has_no_loops(self):
        cfg = Cfg.of(diamond_heap())
        assert cfg.natural_loops() == ()

    def test_simple_loop_detected(self):
        cfg = Cfg.of(loop_heap())
        loops = cfg.natural_loops()
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "loop"
        assert loop.body == frozenset({"loop", "body"})
        assert "body" in loop
        assert "exit_" not in loop

    def test_back_edges(self):
        cfg = Cfg.of(loop_heap())
        assert cfg.back_edges() == (("body", "loop"),)

    def test_self_loop(self):
        pb = ProgramBuilder(atomics={"x"})
        f = pb.function("f")
        spin = f.block("spin")
        spin.load("r", "x", "rlx")
        spin.be(binop("==", "r", 0), "spin", "end")
        f.block("end").ret()
        pb.thread("f")
        cfg = Cfg.of(pb.build().function("f"))
        loops = cfg.natural_loops()
        assert len(loops) == 1
        assert loops[0].body == frozenset({"spin"})


def test_fallthrough_chain():
    pb = ProgramBuilder()
    f = pb.function("f")
    f.block("a").jmp("b")
    f.block("b").jmp("c")
    f.block("c").ret()
    pb.thread("f")
    heap = pb.build().function("f")
    assert block_fallthrough_chain(heap, "a") == ("a", "b", "c")
