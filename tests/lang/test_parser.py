"""Parser unit tests: concrete syntax, errors, operator precedence."""

import pytest

from repro.lang.parser import ParseError, parse_program
from repro.lang.syntax import (
    AccessMode,
    Assign,
    Be,
    BinOp,
    Call,
    Cas,
    Const,
    FenceKind,
    Jmp,
    Load,
    Print,
    Reg,
    Return,
    Skip,
    Store,
)

MINIMAL = """
fn main {
entry:
    skip;
    return;
}
threads main;
"""


def test_minimal_program():
    prog = parse_program(MINIMAL)
    assert prog.threads == ("main",)
    heap = prog.function("main")
    assert heap.entry == "entry"
    assert heap["entry"].instrs == (Skip(),)
    assert heap["entry"].term == Return()


def test_atomics_declaration():
    prog = parse_program("atomics x, y;\nfn f { e: x.rlx := 1; return; }\nthreads f;")
    assert prog.atomics == frozenset({"x", "y"})


def test_load_store_modes():
    prog = parse_program(
        """
        atomics x;
        fn f {
        e:
            r1 := x.acq;
            x.rel := 2;
            r2 := a.na;
            a.na := r2;
            return;
        }
        threads f;
        """
    )
    instrs = prog.function("f")["e"].instrs
    assert instrs[0] == Load("r1", "x", AccessMode.ACQ)
    assert instrs[1] == Store("x", Const(2), AccessMode.REL)
    assert instrs[2] == Load("r2", "a", AccessMode.NA)
    assert instrs[3] == Store("a", Reg("r2"), AccessMode.NA)


def test_cas_syntax():
    prog = parse_program(
        "atomics x;\nfn f { e: r := cas.acq.rlx(x, 0, r2 + 1); return; }\nthreads f;"
    )
    instr = prog.function("f")["e"].instrs[0]
    assert instr == Cas(
        "r", "x", Const(0), BinOp("+", Reg("r2"), Const(1)), AccessMode.ACQ, AccessMode.RLX
    )


def test_fence_kinds():
    prog = parse_program(
        "fn f { e: fence.rel; fence.acq; fence.sc; return; }\nthreads f;"
    )
    instrs = prog.function("f")["e"].instrs
    assert [i.kind for i in instrs] == [FenceKind.REL, FenceKind.ACQ, FenceKind.SC]


def test_terminators():
    prog = parse_program(
        """
        fn f {
        a: jmp b;
        b: be r1 < 10, a, c;
        c: call(g, d);
        d: return;
        }
        fn g { e: return; }
        threads f;
        """
    )
    heap = prog.function("f")
    assert heap["a"].term == Jmp("b")
    assert heap["b"].term == Be(BinOp("<", Reg("r1"), Const(10)), "a", "c")
    assert heap["c"].term == Call("g", "d")
    assert heap["d"].term == Return()


def test_precedence_mul_over_add():
    prog = parse_program("fn f { e: r := 1 + 2 * 3; return; }\nthreads f;")
    instr = prog.function("f")["e"].instrs[0]
    assert instr == Assign("r", BinOp("+", Const(1), BinOp("*", Const(2), Const(3))))


def test_parenthesized_expression():
    prog = parse_program("fn f { e: r := (1 + 2) * 3; return; }\nthreads f;")
    instr = prog.function("f")["e"].instrs[0]
    assert instr == Assign("r", BinOp("*", BinOp("+", Const(1), Const(2)), Const(3)))


def test_negative_literal():
    prog = parse_program("fn f { e: r := -3; return; }\nthreads f;")
    assert prog.function("f")["e"].instrs[0] == Assign("r", Const(-3))


def test_comments_ignored():
    prog = parse_program(
        "// header comment\nfn f { e: skip; // trailing\n return; }\nthreads f;"
    )
    assert prog.function("f")["e"].instrs == (Skip(),)


def test_print_instruction():
    prog = parse_program("fn f { e: print(r1 + 1); return; }\nthreads f;")
    assert prog.function("f")["e"].instrs[0] == Print(BinOp("+", Reg("r1"), Const(1)))


def test_error_reports_line_number():
    with pytest.raises(ParseError, match="line 3"):
        parse_program("fn f {\ne:\n    r := := 1;\n    return;\n}\nthreads f;")


def test_error_on_unknown_mode():
    with pytest.raises(ParseError, match="unknown access mode"):
        parse_program("fn f { e: r := x.foo; return; }\nthreads f;")


def test_error_on_unknown_fence():
    with pytest.raises(ParseError, match="unknown fence kind"):
        parse_program("fn f { e: fence.weak; return; }\nthreads f;")


def test_error_on_missing_threads():
    with pytest.raises(ParseError):
        parse_program("fn f { e: return; }")


def test_error_on_garbage_character():
    with pytest.raises(ParseError, match="unexpected character"):
        parse_program("fn f { e: r := 1 $ 2; return; }\nthreads f;")


def test_error_on_unterminated_block():
    with pytest.raises(ParseError):
        parse_program("fn f { e: skip; }\nthreads f;")


def test_multiple_threads_same_function():
    prog = parse_program("fn f { e: return; }\nthreads f, f, f;")
    assert prog.threads == ("f", "f", "f")
