"""Builder API tests."""

import pytest

from repro.lang.builder import (
    ProgramBuilder,
    as_expr,
    as_mode,
    binop,
    straightline_program,
)
from repro.lang.syntax import AccessMode, BinOp, Const, Load, Reg, Return, Skip, Store


class TestCoercions:
    def test_int_to_const(self):
        assert as_expr(3) == Const(3)

    def test_str_to_reg(self):
        assert as_expr("r1") == Reg("r1")

    def test_expr_passthrough(self):
        expr = BinOp("+", Const(1), Const(2))
        assert as_expr(expr) is expr

    def test_bad_coercion(self):
        with pytest.raises(TypeError):
            as_expr(3.14)

    def test_mode_coercion(self):
        assert as_mode("rlx") is AccessMode.RLX
        assert as_mode(AccessMode.ACQ) is AccessMode.ACQ

    def test_binop_helper(self):
        assert binop("<", "r", 10) == BinOp("<", Reg("r"), Const(10))


class TestBlockBuilder:
    def test_instructions_accumulate_in_order(self):
        pb = ProgramBuilder(atomics={"x"})
        f = pb.function("f")
        b = f.block("entry")
        b.load("r", "x", "rlx").store("y", "r", "na").skip()
        b.ret()
        pb.thread("f")
        block = pb.build().function("f")["entry"]
        assert block.instrs == (
            Load("r", "x", AccessMode.RLX),
            Store("y", Reg("r"), AccessMode.NA),
            Skip(),
        )
        assert block.term == Return()

    def test_double_terminate_rejected(self):
        pb = ProgramBuilder()
        b = pb.function("f").block("entry")
        b.ret()
        with pytest.raises(ValueError, match="already terminated"):
            b.jmp("entry")

    def test_instruction_after_terminator_rejected(self):
        pb = ProgramBuilder()
        b = pb.function("f").block("entry")
        b.ret()
        with pytest.raises(ValueError, match="already terminated"):
            b.skip()

    def test_unterminated_block_gets_implicit_return(self):
        pb = ProgramBuilder()
        pb.function("f").block("entry").skip()
        pb.thread("f")
        assert pb.build().function("f")["entry"].term == Return()


class TestFunctionBuilder:
    def test_first_block_is_entry(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        f.block("start").jmp("other")
        f.block("other").ret()
        pb.thread("f")
        assert pb.build().function("f").entry == "start"

    def test_block_retrieval_is_idempotent(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        b1 = f.block("entry")
        b2 = f.block("entry")
        assert b1 is b2

    def test_empty_function_rejected(self):
        pb = ProgramBuilder()
        pb.function("f")
        pb.thread("f")
        with pytest.raises(ValueError, match="no blocks"):
            pb.build()

    def test_duplicate_function_rejected(self):
        pb = ProgramBuilder()
        pb.function("f")
        with pytest.raises(ValueError, match="already defined"):
            pb.function("f")


class TestStraightline:
    def test_thread_names(self):
        prog = straightline_program([[Skip()], [Skip()]])
        assert prog.threads == ("t1", "t2")
        assert set(prog.function_map) == {"t1", "t2"}

    def test_atomics_passed_through(self):
        prog = straightline_program([[Store("x", Const(1), AccessMode.RLX)]], atomics={"x"})
        assert prog.atomics == frozenset({"x"})
