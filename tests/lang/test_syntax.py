"""Unit tests for the CSimpRTL AST: well-formedness and helpers."""

import pytest

from repro.lang.builder import ProgramBuilder, straightline_program
from repro.lang.syntax import (
    AccessMode,
    Assign,
    BasicBlock,
    Be,
    BinOp,
    Call,
    Cas,
    CodeHeap,
    Const,
    Jmp,
    Load,
    Print,
    Reg,
    Return,
    Skip,
    Store,
    eval_expr,
    expr_is_const,
    expr_regs,
    instr_def,
    instr_uses,
    program_registers,
    terminator_targets,
)
from repro.lang.values import Int32


class TestExpressions:
    def test_eval_const(self):
        assert eval_expr(Const(7), {}) == 7

    def test_eval_unbound_register_is_zero(self):
        assert eval_expr(Reg("r9"), {}) == 0

    def test_eval_bound_register(self):
        assert eval_expr(Reg("r1"), {"r1": Int32(5)}) == 5

    def test_eval_arith(self):
        expr = BinOp("+", BinOp("*", Const(2), Reg("r")), Const(1))
        assert eval_expr(expr, {"r": Int32(10)}) == 21

    def test_eval_comparisons(self):
        assert eval_expr(BinOp("<", Const(1), Const(2)), {}) == 1
        assert eval_expr(BinOp(">=", Const(1), Const(2)), {}) == 0
        assert eval_expr(BinOp("==", Const(3), Const(3)), {}) == 1
        assert eval_expr(BinOp("!=", Const(3), Const(3)), {}) == 0

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("/", Const(1), Const(2))

    def test_expr_regs(self):
        expr = BinOp("+", Reg("a"), BinOp("-", Reg("b"), Const(1)))
        assert expr_regs(expr) == frozenset({"a", "b"})

    def test_expr_is_const(self):
        assert expr_is_const(BinOp("*", Const(2), Const(3)))
        assert not expr_is_const(Reg("r"))


class TestInstructionModes:
    def test_load_rejects_release(self):
        with pytest.raises(ValueError):
            Load("r", "x", AccessMode.REL)

    def test_store_rejects_acquire(self):
        with pytest.raises(ValueError):
            Store("x", Const(1), AccessMode.ACQ)

    def test_cas_rejects_na_read(self):
        with pytest.raises(ValueError):
            Cas("r", "x", Const(0), Const(1), AccessMode.NA, AccessMode.RLX)

    def test_cas_rejects_na_write(self):
        with pytest.raises(ValueError):
            Cas("r", "x", Const(0), Const(1), AccessMode.RLX, AccessMode.NA)

    def test_instr_uses_and_def(self):
        store = Store("x", BinOp("+", Reg("a"), Reg("b")), AccessMode.NA)
        assert instr_uses(store) == frozenset({"a", "b"})
        assert instr_def(store) is None
        load = Load("r", "x", AccessMode.NA)
        assert instr_uses(load) == frozenset()
        assert instr_def(load) == "r"
        assign = Assign("d", Reg("s"))
        assert instr_def(assign) == "d"


class TestTerminators:
    def test_targets(self):
        assert terminator_targets(Jmp("a")) == ("a",)
        assert terminator_targets(Be(Const(1), "a", "b")) == ("a", "b")
        assert terminator_targets(Call("f", "ret")) == ("ret",)
        assert terminator_targets(Return()) == ()


class TestCodeHeap:
    def test_entry_must_exist(self):
        block = BasicBlock((), Return())
        with pytest.raises(ValueError):
            CodeHeap((("a", block),), "missing")

    def test_dangling_jump_rejected(self):
        block = BasicBlock((), Jmp("nowhere"))
        with pytest.raises(ValueError):
            CodeHeap((("a", block),), "a")

    def test_lookup(self):
        block = BasicBlock((Skip(),), Return())
        heap = CodeHeap((("a", block),), "a")
        assert heap["a"] is not None
        assert "a" in heap
        assert "b" not in heap
        with pytest.raises(KeyError):
            heap["b"]


class TestProgramWellFormedness:
    def test_na_access_to_atomic_rejected(self):
        with pytest.raises(ValueError, match="non-atomic access to atomic"):
            straightline_program([[Load("r", "x", AccessMode.NA)]], atomics={"x"})

    def test_atomic_access_to_na_rejected(self):
        with pytest.raises(ValueError, match="atomic access to non-atomic"):
            straightline_program([[Load("r", "x", AccessMode.RLX)]], atomics=set())

    def test_cas_on_na_location_rejected(self):
        with pytest.raises(ValueError, match="CAS on non-atomic"):
            straightline_program(
                [[Cas("r", "x", Const(0), Const(1), AccessMode.RLX, AccessMode.RLX)]],
                atomics=set(),
            )

    def test_unknown_thread_entry_rejected(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        f.block("entry").ret()
        pb.thread("g")
        with pytest.raises(ValueError, match="not a declared function"):
            pb.build()

    def test_unknown_call_target_rejected(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        b = f.block("entry")
        b.call("missing", "entry")
        pb.thread("f")
        with pytest.raises(ValueError, match="not a declared function"):
            pb.build()

    def test_locations_collects_all(self):
        prog = straightline_program(
            [[Store("a", Const(1), AccessMode.NA), Load("r", "x", AccessMode.RLX)]],
            atomics={"x"},
        )
        assert prog.locations() == frozenset({"a", "x"})

    def test_program_registers(self):
        prog = straightline_program(
            [[Assign("r1", BinOp("+", Reg("r2"), Const(1))), Print(Reg("r3"))]]
        )
        assert program_registers(prog) == frozenset({"r1", "r2", "r3"})

    def test_with_functions_preserves_atomics_and_threads(self):
        prog = straightline_program([[Skip()]], atomics={"x"})
        clone = prog.with_functions(prog.function_map)
        assert clone == prog

    def test_num_instructions(self):
        prog = straightline_program([[Skip(), Skip()], [Skip()]])
        assert prog.num_instructions() == 3
