"""Printer/parser round-trip: ``parse(format(p)) == p`` — checked on hand
examples and on randomly generated programs (property test)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse_program
from repro.lang.printer import format_expr, format_instr, format_program
from repro.lang.syntax import AccessMode, BinOp, Cas, Const, Load, Reg, Store
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.litmus.library import LITMUS_SUITE


def test_format_expr_nested():
    expr = BinOp("+", Const(1), BinOp("*", Reg("r"), Const(2)))
    assert format_expr(expr) == "(1 + (r * 2))"


def test_format_instr_load_store():
    assert format_instr(Load("r", "x", AccessMode.ACQ)) == "r := x.acq"
    assert format_instr(Store("x", Const(3), AccessMode.REL)) == "x.rel := 3"


def test_format_instr_cas():
    instr = Cas("r", "x", Const(0), Const(1), AccessMode.RLX, AccessMode.REL)
    assert format_instr(instr) == "r := cas.rlx.rel(x, 0, 1)"


def test_litmus_suite_roundtrips():
    for test in LITMUS_SUITE.values():
        printed = format_program(test.program)
        assert parse_program(printed) == test.program, test.name


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generated_programs_roundtrip(seed):
    program = random_wwrf_program(seed)
    assert parse_program(format_program(program)) == program


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generated_programs_roundtrip_with_branches_and_cas(seed):
    config = GeneratorConfig(threads=3, instrs_per_thread=8, allow_cas=True)
    program = random_wwrf_program(seed, config)
    assert parse_program(format_program(program)) == program
