"""Execution witness tests."""


from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Const, Print
from repro.litmus.library import fig1_source, fig1_target, sb
from repro.semantics.events import EVENT_DONE
from repro.semantics.witness import explain_counterexample, find_witness


def test_witness_for_terminal_trace():
    program = straightline_program([[Print(Const(5))]])
    witness = find_witness(program, (5, EVENT_DONE))
    assert witness is not None
    assert witness.states[-1].all_done
    assert [v for _, v in witness.outputs if v is not None] == [5]


def test_no_witness_for_impossible_trace():
    program = straightline_program([[Print(Const(5))]])
    assert find_witness(program, (6, EVENT_DONE)) is None


def test_witness_for_prefix():
    program = straightline_program([[Print(Const(1)), Print(Const(2))]])
    witness = find_witness(program, (1,))
    assert witness is not None
    assert not witness.states[-1].all_done or True  # prefix need not be terminal


def test_sb_weak_outcome_witness():
    witness = find_witness(sb(), (0, 0, EVENT_DONE))
    assert witness is not None
    # The schedule must involve both threads.
    tids = {state.cur for state in witness.states}
    assert tids == {0, 1}


def test_fig1_counterexample_explanation():
    from repro.lang.syntax import AccessMode as AM

    source = fig1_source(AM.ACQ)
    target = fig1_target(AM.ACQ)
    text = explain_counterexample(source, target, (0,))
    assert "reachable in target : True" in text
    assert "reachable in source : False" in text
    assert "target schedule" in text


def test_witness_describe_renders():
    program = straightline_program([[Print(Const(5))]])
    witness = find_witness(program, (5, EVENT_DONE))
    description = witness.describe()
    assert "out(5)" in description
    assert "cur=t0" in description


def test_nonpreemptive_witness():
    witness = find_witness(sb(), (1, 1, EVENT_DONE), nonpreemptive=True)
    assert witness is not None
