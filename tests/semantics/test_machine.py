"""Interleaving machine tests (paper Fig. 9)."""


from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Const, Load, Print, Skip, Store
from repro.memory.memory import Memory
from repro.semantics.events import OutputEvent, SilentEvent
from repro.semantics.machine import (
    MachineState,
    SwitchEvent,
    initial_machine_state,
    machine_steps,
)
from repro.semantics.thread import SemanticsConfig

CFG = SemanticsConfig()


def two_skip_program():
    return straightline_program([[Skip()], [Skip()]])


class TestInitialState:
    def test_initial(self):
        program = two_skip_program()
        state = initial_machine_state(program, CFG)
        assert state.cur == 0
        assert len(state.pool) == 2
        assert not state.all_done
        assert state.mem == Memory.initial([])

    def test_initial_memory_covers_locations(self):
        program = straightline_program(
            [[Store("x", Const(1), AccessMode.NA), Load("r", "y", AccessMode.NA)]]
        )
        state = initial_machine_state(program, CFG)
        assert set(state.mem.locations()) == {"x", "y"}


class TestSteps:
    def test_switch_steps_enumerated(self):
        program = two_skip_program()
        state = initial_machine_state(program, CFG)
        switches = [
            e for e, _ in machine_steps(program, state, CFG) if isinstance(e, SwitchEvent)
        ]
        assert switches == [SwitchEvent(1)]

    def test_no_switch_to_done_thread(self):
        program = two_skip_program()
        state = initial_machine_state(program, CFG)
        # Run thread 1 to completion: skip, then return.
        state = MachineState(state.pool, 1, state.mem)
        for _ in range(2):
            candidates = [
                s for e, s in machine_steps(program, state, CFG) if not isinstance(e, SwitchEvent)
            ]
            state = candidates[0]
        assert state.pool[1].local.done
        state0 = MachineState(state.pool, 0, state.mem)
        switches = [
            e for e, _ in machine_steps(program, state0, CFG) if isinstance(e, SwitchEvent)
        ]
        assert switches == []

    def test_out_step_labeled(self):
        program = straightline_program([[Print(Const(5))]])
        state = initial_machine_state(program, CFG)
        events = [e for e, _ in machine_steps(program, state, CFG)]
        assert events == [OutputEvent(5)]

    def test_silent_steps_labeled_tau(self):
        program = two_skip_program()
        state = initial_machine_state(program, CFG)
        events = [
            e for e, _ in machine_steps(program, state, CFG) if not isinstance(e, SwitchEvent)
        ]
        assert events == [SilentEvent()]

    def test_all_done_after_running_everything(self):
        program = two_skip_program()
        state = initial_machine_state(program, CFG)
        for _ in range(10):
            if state.all_done:
                break
            steps = list(machine_steps(program, state, CFG))
            non_switch = [s for e, s in steps if not isinstance(e, SwitchEvent)]
            state = non_switch[0] if non_switch else steps[0][1]
        assert state.all_done
