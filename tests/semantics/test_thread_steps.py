"""Unit tests for the PS2.1 thread step relation."""


from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Assign, BinOp, Const, Load, Print, Reg, Skip, Store
from repro.lang.values import Int32
from repro.memory.memory import Memory
from repro.memory.message import Message
from repro.memory.timemap import view_of
from repro.memory.timestamps import ts
from repro.semantics.events import (
    OutputEvent,
    ReadEvent,
    SilentEvent,
    WriteEvent,
)
from repro.semantics.thread import SemanticsConfig, thread_steps
from repro.semantics.threadstate import initial_thread_state, next_op

CFG = SemanticsConfig()


def single_thread(instrs, atomics=()):
    program = straightline_program([instrs], atomics=atomics)
    ts0 = initial_thread_state(program, "t1")
    mem = Memory.initial(sorted(program.locations()))
    return program, ts0, mem


def steps(program, state, mem):
    return list(thread_steps(program, state, mem, CFG))


class TestLocalSteps:
    def test_skip_is_silent(self):
        program, ts0, mem = single_thread([Skip()])
        results = steps(program, ts0, mem)
        assert len(results) == 1
        event, ts1, mem1 = results[0]
        assert event == SilentEvent()
        assert mem1 == mem
        assert ts1.local.offset == 1

    def test_assign_updates_register(self):
        program, ts0, mem = single_thread([Assign("r", BinOp("+", Const(2), Const(3)))])
        _, ts1, _ = steps(program, ts0, mem)[0]
        assert ts1.local.get_reg("r") == 5

    def test_print_emits_output(self):
        program, ts0, mem = single_thread([Assign("r", Const(7)), Print(Reg("r"))])
        _, ts1, _ = steps(program, ts0, mem)[0]
        event, ts2, _ = steps(program, ts1, mem)[0]
        assert event == OutputEvent(Int32(7))

    def test_return_marks_done(self):
        program, ts0, mem = single_thread([])
        _, ts1, _ = steps(program, ts0, mem)[0]
        assert ts1.local.done
        assert steps(program, ts1, mem) == []
        assert next_op(program, ts1.local) is None


class TestReads:
    def test_read_enumerates_all_visible_messages(self):
        program, ts0, mem = single_thread([Load("r", "x", AccessMode.RLX)], atomics={"x"})
        mem = mem.add(Message("x", Int32(1), ts(0), ts(1)))
        mem = mem.add(Message("x", Int32(2), ts(1), ts(2)))
        results = steps(program, ts0, mem)
        values = sorted(int(r[1].local.get_reg("r")) for r in results)
        assert values == [0, 1, 2]

    def test_read_respects_view_floor(self):
        program, ts0, mem = single_thread([Load("r", "x", AccessMode.RLX)], atomics={"x"})
        mem = mem.add(Message("x", Int32(1), ts(0), ts(1)))
        ts0 = ts0.with_view(view_of({"x": ts(1)}))
        results = steps(program, ts0, mem)
        values = sorted(int(r[1].local.get_reg("r")) for r in results)
        assert values == [1]

    def test_na_read_checked_against_tna_not_trlx(self):
        """A na read may go below T_rlx as long as it is ≥ T_na."""
        from repro.memory.timemap import TimeMap, View

        program, ts0, mem = single_thread([Load("r", "x", AccessMode.NA)])
        mem = mem.add(Message("x", Int32(1), ts(0), ts(1)))
        # trlx at 1 but tna at 0: the na read may still read the init 0.
        ts0 = ts0.with_view(View(TimeMap(), TimeMap().set("x", ts(1))))
        values = sorted(int(r[1].local.get_reg("r")) for r in steps(program, ts0, mem))
        assert values == [0, 1]

    def test_read_event_carries_mode_loc_value(self):
        program, ts0, mem = single_thread([Load("r", "x", AccessMode.ACQ)], atomics={"x"})
        event, _, _ = steps(program, ts0, mem)[0]
        assert event == ReadEvent(AccessMode.ACQ, "x", Int32(0))

    def test_acquire_read_joins_message_view(self):
        program, ts0, mem = single_thread([Load("r", "x", AccessMode.ACQ)], atomics={"x"})
        writer_view = view_of({"y": ts(5)})
        mem = mem.add(Message("x", Int32(1), ts(0), ts(1), writer_view))
        results = [r for r in steps(program, ts0, mem) if r[1].local.get_reg("r") == 1]
        (_, ts1, _) = results[0]
        assert ts1.view.tna.get("y") == 5

    def test_relaxed_read_does_not_join_message_view(self):
        program, ts0, mem = single_thread([Load("r", "x", AccessMode.RLX)], atomics={"x"})
        writer_view = view_of({"y": ts(5)})
        mem = mem.add(Message("x", Int32(1), ts(0), ts(1), writer_view))
        results = [r for r in steps(program, ts0, mem) if r[1].local.get_reg("r") == 1]
        (_, ts1, _) = results[0]
        assert ts1.view.tna.get("y") == 0
        # ... but the view is buffered for a future acquire fence.
        assert ts1.vacq.tna.get("y") == 5


class TestWrites:
    def test_write_appends_message(self):
        program, ts0, mem = single_thread([Store("x", Const(9), AccessMode.RLX)], atomics={"x"})
        results = steps(program, ts0, mem)
        assert len(results) == 1  # only the append candidate on dense memory
        event, ts1, mem1 = results[0]
        assert event == WriteEvent(AccessMode.RLX, "x", Int32(9))
        t = mem1.latest_ts("x")
        assert mem1.message_at("x", t).value == 9
        assert ts1.view.trlx.get("x") == t

    def test_write_enumerates_gap_placements(self):
        program, ts0, mem = single_thread([Store("x", Const(9), AccessMode.NA)])
        from repro.memory.timestamps import GRANULE

        mem = mem.add(Message("x", Int32(1), GRANULE, 2 * GRANULE))
        results = steps(program, ts0, mem)
        # one candidate inside the gap (0,G), one append after 2G
        assert len(results) == 2

    def test_release_write_carries_thread_view(self):
        program, ts0, mem = single_thread(
            [Store("y", Const(1), AccessMode.NA), Store("x", Const(1), AccessMode.REL)],
            atomics={"x"},
        )
        _, ts1, mem1 = steps(program, ts0, mem)[0]  # y := 1 (na)
        _, ts2, mem2 = steps(program, ts1, mem1)[0]  # x.rel := 1
        msg = mem2.message_at("x", mem2.latest_ts("x"))
        assert msg.view.tna.get("y") == mem2.latest_ts("y")  # release publishes the y write

    def test_na_write_carries_bottom_view(self):
        program, ts0, mem = single_thread(
            [Store("y", Const(1), AccessMode.NA), Store("z", Const(1), AccessMode.NA)]
        )
        _, ts1, mem1 = steps(program, ts0, mem)[0]
        _, _, mem2 = steps(program, ts1, mem1)[0]
        msg = mem2.message_at("z", mem2.latest_ts("z"))
        assert msg.view.tna.get("y") == 0


class TestPromiseFulfillment:
    def test_write_can_fulfill_promise(self):
        program, ts0, mem = single_thread([Store("x", Const(1), AccessMode.NA)])
        promise = Message("x", Int32(1), ts(0), ts(1))
        mem = mem.add(promise)
        ts0 = ts0.replace(promises=Memory((promise,)))
        results = steps(program, ts0, mem)
        fulfills = [r for r in results if r[2] == mem]  # memory unchanged
        assert fulfills
        _, ts1, _ = fulfills[0]
        assert not ts1.has_promises

    def test_wrong_value_cannot_fulfill(self):
        program, ts0, mem = single_thread([Store("x", Const(2), AccessMode.NA)])
        promise = Message("x", Int32(1), ts(0), ts(1))
        mem = mem.add(promise)
        ts0 = ts0.replace(promises=Memory((promise,)))
        for _, ts1, _ in steps(program, ts0, mem):
            assert ts1.has_promises  # promise never discharged

    def test_release_write_blocked_by_promise_on_same_loc(self):
        program, ts0, mem = single_thread([Store("x", Const(1), AccessMode.REL)], atomics={"x"})
        promise = Message("x", Int32(1), ts(0), ts(1))
        mem = mem.add(promise)
        ts0 = ts0.replace(promises=Memory((promise,)))
        assert steps(program, ts0, mem) == []
