"""Theorem 4.1 (semantics equivalence): the non-preemptive machine
produces exactly the interleaving machine's observable behaviors.

Checked by exhaustive behavior-set equality on the litmus suite, with
promise budgets sized per test (the non-preemptive side realizes
mid-NA-block write visibility by promising the block's writes *before*
entering it — paper Sec. 4's discussion of the two "questionable"
behavior classes)."""

import pytest

from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Const, Load, Print, Reg, Store
from repro.litmus.library import LITMUS_SUITE
from repro.semantics.exploration import behaviors, np_behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig


def config_for(test):
    if test.needs_promises or test.promise_budget:
        oracle = SyntacticPromises(
            budget=test.promise_budget, max_outstanding=test.promise_budget
        )
        return SemanticsConfig(promise_oracle=oracle)
    return SemanticsConfig()


@pytest.mark.parametrize("name", sorted(LITMUS_SUITE))
def test_equivalence_on_litmus_suite(name):
    test = LITMUS_SUITE[name]
    config = config_for(test)
    interleaving = behaviors(test.program, config)
    nonpreemptive = np_behaviors(test.program, config)
    assert interleaving.exhaustive and nonpreemptive.exhaustive
    assert interleaving.traces == nonpreemptive.traces, (
        f"{name}: interleaving-only "
        f"{sorted(interleaving.traces - nonpreemptive.traces)[:5]}, np-only "
        f"{sorted(nonpreemptive.traces - interleaving.traces)[:5]}"
    )


def test_np_redundant_reads_can_differ():
    """Paper Sec. 4 objection (1): two redundant na reads inside one block
    can still see different values in the non-preemptive semantics, since a
    read needs not read the latest message."""
    program = straightline_program(
        [
            [Store("a", Const(1), AccessMode.NA)],
            [
                Load("r1", "a", AccessMode.NA),
                Load("r2", "a", AccessMode.NA),
                Print(Reg("r1")),
                Print(Reg("r2")),
            ],
        ]
    )
    config = SemanticsConfig(promise_oracle=SyntacticPromises(budget=1))
    outs = np_behaviors(program, config).outputs()
    assert (1, 0) in outs or (0, 1) in outs  # differing redundant reads


def test_np_redundant_writes_all_visible():
    """Paper Sec. 4 objection (2): both writes of a non-atomic block can be
    seen by another thread — realized by promising them before the block."""
    program = straightline_program(
        [
            [Store("a", Const(1), AccessMode.NA), Store("a", Const(2), AccessMode.NA)],
            [Load("r", "a", AccessMode.NA), Print(Reg("r"))],
        ]
    )
    config = SemanticsConfig(promise_oracle=SyntacticPromises(budget=2, max_outstanding=2))
    outs = np_behaviors(program, config).outputs()
    assert (1,) in outs and (2,) in outs


def test_np_is_subset_even_with_small_budget():
    """With any promise budget, NP behaviors are included in interleaving
    behaviors at the same budget (soundness direction needs no promises)."""
    for name, test in LITMUS_SUITE.items():
        config = SemanticsConfig()
        interleaving = behaviors(test.program, config)
        nonpreemptive = np_behaviors(test.program, config)
        assert nonpreemptive.traces <= interleaving.traces, name
