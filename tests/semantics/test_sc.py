"""SC baseline tests: strong outcomes only, and SC ⊆ PS2.1 (property)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.litmus.library import cas_exclusivity, lb, mp_relacq, mp_rlx, sb
from repro.semantics.exploration import behaviors
from repro.semantics.sc import initial_sc_state, sc_behaviors, sc_machine_steps


def sc_outputs(program):
    result = sc_behaviors(program)
    assert result.exhaustive
    return sorted(result.outputs())


class TestScOutcomes:
    def test_sb_weak_outcome_forbidden(self):
        outs = sc_outputs(sb())
        assert (0, 0) not in outs
        assert (1, 1) in outs

    def test_lb_weak_outcome_forbidden(self):
        assert (1, 1) not in sc_outputs(lb())

    def test_mp_never_stale_even_relaxed(self):
        assert (0,) not in sc_outputs(mp_rlx())

    def test_cas_exclusivity_under_sc(self):
        outs = sc_outputs(cas_exclusivity())
        assert (1, 1) not in outs
        assert (0, 0) not in outs

    def test_mp_relacq_same_as_sc_here(self):
        assert sc_outputs(mp_relacq()) == [(), (1,)]


class TestScMachine:
    def test_initial_state(self):
        state = initial_sc_state(sb())
        assert not state.all_done
        assert state.mem.get("x") == 0

    def test_done_threads_offer_no_steps(self):
        from repro.lang.builder import straightline_program
        from repro.lang.syntax import Skip

        program = straightline_program([[Skip()]])
        state = initial_sc_state(program)
        for _ in range(2):  # skip, return
            _, state = next(iter(sc_machine_steps(program, state)))
        assert state.all_done
        assert list(sc_machine_steps(program, state)) == []


class TestScWithinPs:
    @pytest.mark.parametrize(
        "program", [sb(), lb(), mp_rlx(), mp_relacq(), cas_exclusivity()],
        ids=["sb", "lb", "mp_rlx", "mp_relacq", "cas"],
    )
    def test_sc_traces_subset_of_ps(self, program):
        """Every SC behavior is a PS2.1 behavior (reading the newest
        message is always permitted)."""
        sc = sc_behaviors(program)
        ps = behaviors(program)
        assert sc.traces <= ps.traces

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_sc_subset_property_on_random_programs(self, seed):
        program = random_wwrf_program(seed, GeneratorConfig(instrs_per_thread=4))
        sc = sc_behaviors(program)
        ps = behaviors(program)
        assert sc.exhaustive and ps.exhaustive
        assert sc.traces <= ps.traces
