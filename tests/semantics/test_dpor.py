"""Sleep-set DPOR (:mod:`repro.semantics.dpor`): behavior preservation
against the unreduced explorer is the whole point.

Equality is asserted on ``.traces`` (the observable behavior set) — state
counts are *expected* to differ; that reduction is what DPOR is for.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.builder import ProgramBuilder
from repro.lang.syntax import Const
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.litmus.library import LITMUS_SUITE, sb, sb_with_sc_fences
from repro.robust.budget import Budget
from repro.semantics.dpor import (
    EMPTY_FP,
    FLAG_OUT,
    FLAG_PRM,
    FLAG_SC,
    TOP_FP,
    dependent,
)
from repro.semantics.exploration import Explorer, behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig

DPOR = SemanticsConfig(por="dpor")


def suite_config(test) -> SemanticsConfig:
    base = SemanticsConfig()
    if test.promise_budget:
        base = SemanticsConfig(
            promise_oracle=SyntacticPromises(
                budget=test.promise_budget, max_outstanding=test.promise_budget
            )
        )
    return base


class TestDependency:
    def test_disjoint_accesses_independent(self):
        a = (frozenset(("x",)), frozenset(), 0)
        b = (frozenset(), frozenset(("y",)), 0)
        assert not dependent(a, b)

    def test_write_read_overlap_dependent(self):
        w = (frozenset(), frozenset(("x",)), 0)
        r = (frozenset(("x",)), frozenset(), 0)
        assert dependent(w, r) and dependent(r, w)

    def test_read_read_overlap_independent(self):
        r = (frozenset(("x",)), frozenset(), 0)
        assert not dependent(r, r)

    def test_flags(self):
        out = (frozenset(), frozenset(), FLAG_OUT)
        sc = (frozenset(), frozenset(), FLAG_SC)
        assert dependent(out, out) and dependent(sc, sc)
        assert not dependent(out, sc)
        assert dependent(TOP_FP, EMPTY_FP)  # FLAG_PRM beats everything
        assert TOP_FP[2] & FLAG_PRM
        assert not dependent(EMPTY_FP, EMPTY_FP)


class TestLitmusEquality:
    @pytest.mark.parametrize("name", sorted(LITMUS_SUITE))
    def test_dpor_preserves_behaviors_on_suite(self, name):
        test = LITMUS_SUITE[name]
        base = suite_config(test)
        plain = behaviors(test.program, base)
        reduced = behaviors(test.program, dataclasses.replace(base, por="dpor"))
        assert plain.traces == reduced.traces, name
        assert reduced.state_count <= plain.state_count

    def test_sc_fences(self):
        """SC fences exchange with the global SC view — mutually
        dependent, so DPOR must keep both fence orders."""
        plain = behaviors(sb_with_sc_fences())
        reduced = behaviors(sb_with_sc_fences(), DPOR)
        assert plain.traces == reduced.traces
        assert (0, 0) not in reduced.outputs()  # the forbidden SB outcome


class TestPropertyEquality:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_random_programs(self, seed):
        program = random_wwrf_program(seed, GeneratorConfig(instrs_per_thread=5))
        assert behaviors(program).traces == behaviors(program, DPOR).traces

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_random_programs_with_branches_and_cas(self, seed):
        program = random_wwrf_program(
            seed,
            GeneratorConfig(instrs_per_thread=4, allow_branches=True, allow_cas=True),
        )
        assert behaviors(program).traces == behaviors(program, DPOR).traces

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=60))
    def test_promise_heavy_configs(self, seed):
        """``por="dpor"`` must stay behavior-equal even where the
        soundness gate downgrades it to the fused BFS."""
        program = random_wwrf_program(
            seed, GeneratorConfig(threads=2, instrs_per_thread=3)
        )
        base = SemanticsConfig(
            promise_oracle=SyntacticPromises(budget=1, max_outstanding=1)
        )
        plain = behaviors(program, base)
        reduced = behaviors(program, dataclasses.replace(base, por="dpor"))
        assert plain.traces == reduced.traces


class TestCycleProviso:
    def test_infinite_print_loop(self):
        """A looping thread exercises the back-edge rule: without the
        cycle proviso the one-shot printer could be ignored forever and
        its output lost from the behavior set."""
        pb = ProgramBuilder()
        block = pb.function("spin").block("loop")
        block.print_(Const(1))
        block.jmp("loop")
        pb.function("shot").block("entry").print_(Const(2))
        pb.thread("spin").thread("shot")
        program = pb.build()
        plain = behaviors(program, SemanticsConfig(por="none", max_outputs=4))
        reduced = behaviors(program, SemanticsConfig(por="dpor", max_outputs=4))
        assert plain.traces == reduced.traces
        explorer = Explorer(program, SemanticsConfig(por="dpor", max_outputs=4))
        explorer.build()
        assert explorer.dpor_stats.full_expansions > 0


class TestStatsAndGating:
    def test_stats_populated_and_states_reduced(self):
        explorer = Explorer(sb(), DPOR)
        result = explorer.behaviors()
        stats = explorer.dpor_stats
        assert stats is not None
        assert stats.nodes == result.state_count
        assert stats.sleep_skips + stats.sleep_blocked > 0
        assert stats.backtrack_points > 0
        assert result.state_count < behaviors(sb()).state_count
        assert set(stats.as_dict()) == {
            "nodes", "transitions", "sleep_skips", "sleep_blocked",
            "backtrack_points", "full_expansions",
        }

    def test_promise_config_downgrades_to_fused_bfs(self):
        """The soundness gate: an all-dependent DPOR prunes nothing, so
        promise configs run the (validated) fused BFS instead."""
        config = SemanticsConfig(
            promise_oracle=SyntacticPromises(budget=2, max_outstanding=2),
            por="dpor",
        )
        explorer = Explorer(sb(), config)
        explorer.build()
        assert explorer.dpor_stats is None
        assert explorer.config.fuse_local_steps

    def test_nonpreemptive_machine_ignores_dpor(self):
        """DPOR models the interleaving machine's switches; ``--np`` has
        its own (coarser) scheduling discipline."""
        explorer = Explorer(sb(), DPOR, nonpreemptive=True)
        explorer.build()
        assert explorer.dpor_stats is None


class TestCheckpointResume:
    def test_interrupted_dpor_resumes_to_identical_behaviors(self):
        program = LITMUS_SUITE["2+2W"].program
        unreduced = behaviors(program)
        uninterrupted = behaviors(program, DPOR)
        first = Explorer(program, DPOR)
        first.build(meter=Budget(max_states=10).start())
        checkpoint = first.snapshot()
        assert checkpoint.dpor is not None  # live DFS stack persisted
        resumed = Explorer.resume(checkpoint, program, DPOR).behaviors()
        assert resumed.traces == uninterrupted.traces == unreduced.traces
        assert resumed.state_count == uninterrupted.state_count

    def test_checkpoint_file_round_trip(self, tmp_path):
        from repro.robust.checkpoint import load_checkpoint, save_checkpoint

        program = sb()
        explorer = Explorer(program, DPOR)
        explorer.build(meter=Budget(max_states=8).start())
        path = str(tmp_path / "dpor.ckpt")
        save_checkpoint(explorer.snapshot(), path)
        resumed = Explorer.resume(load_checkpoint(path), program, DPOR)
        assert resumed.behaviors().traces == behaviors(program).traces

    def test_pre_dpor_checkpoint_still_resumes(self):
        """Checkpoints written before the ``dpor`` field existed load and
        resume as plain BFS (readers use ``getattr``)."""
        program = sb()
        explorer = Explorer(program, SemanticsConfig())
        explorer.build(meter=Budget(max_states=10).start())
        checkpoint = explorer.snapshot()
        # Simulate the old schema: an unpickled pre-field checkpoint has
        # no ``dpor`` in its instance dict; the class default covers it.
        object.__delattr__(checkpoint, "dpor")
        assert "dpor" not in checkpoint.__dict__
        assert getattr(checkpoint, "dpor", None) is None
        resumed = Explorer.resume(checkpoint, program)
        assert resumed.behaviors().traces == behaviors(program).traces
