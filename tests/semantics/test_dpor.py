"""Sleep-set DPOR (:mod:`repro.semantics.dpor`): behavior preservation
against the unreduced explorer is the whole point.

Equality is asserted on ``.traces`` (the observable behavior set) — state
counts are *expected* to differ; that reduction is what DPOR is for.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.builder import ProgramBuilder
from repro.lang.syntax import Const
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.litmus.library import LITMUS_SUITE, sb, sb_with_sc_fences
from repro.robust.budget import Budget
from repro.semantics.dpor import (
    EMPTY_FP,
    FLAG_OUT,
    FLAG_PRM,
    FLAG_SC,
    TOP_FP,
    dependent,
)
from repro.semantics.exploration import Explorer, behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig

DPOR = SemanticsConfig(por="dpor")


def suite_config(test) -> SemanticsConfig:
    base = SemanticsConfig()
    if test.promise_budget:
        base = SemanticsConfig(
            promise_oracle=SyntacticPromises(
                budget=test.promise_budget, max_outstanding=test.promise_budget
            )
        )
    return base


class TestDependency:
    def test_disjoint_accesses_independent(self):
        a = (frozenset(("x",)), frozenset(), 0)
        b = (frozenset(), frozenset(("y",)), 0)
        assert not dependent(a, b)

    def test_write_read_overlap_dependent(self):
        w = (frozenset(), frozenset(("x",)), 0)
        r = (frozenset(("x",)), frozenset(), 0)
        assert dependent(w, r) and dependent(r, w)

    def test_read_read_overlap_independent(self):
        r = (frozenset(("x",)), frozenset(), 0)
        assert not dependent(r, r)

    def test_flags(self):
        out = (frozenset(), frozenset(), FLAG_OUT)
        sc = (frozenset(), frozenset(), FLAG_SC)
        assert dependent(out, out) and dependent(sc, sc)
        assert not dependent(out, sc)
        assert dependent(TOP_FP, EMPTY_FP)  # FLAG_PRM beats everything
        assert TOP_FP[2] & FLAG_PRM
        assert not dependent(EMPTY_FP, EMPTY_FP)


class TestLitmusEquality:
    @pytest.mark.parametrize("name", sorted(LITMUS_SUITE))
    def test_dpor_preserves_behaviors_on_suite(self, name):
        test = LITMUS_SUITE[name]
        base = suite_config(test)
        plain = behaviors(test.program, base)
        reduced = behaviors(test.program, dataclasses.replace(base, por="dpor"))
        assert plain.traces == reduced.traces, name
        assert reduced.state_count <= plain.state_count

    def test_sc_fences(self):
        """SC fences exchange with the global SC view — mutually
        dependent, so DPOR must keep both fence orders."""
        plain = behaviors(sb_with_sc_fences())
        reduced = behaviors(sb_with_sc_fences(), DPOR)
        assert plain.traces == reduced.traces
        assert (0, 0) not in reduced.outputs()  # the forbidden SB outcome


class TestPropertyEquality:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_random_programs(self, seed):
        program = random_wwrf_program(seed, GeneratorConfig(instrs_per_thread=5))
        assert behaviors(program).traces == behaviors(program, DPOR).traces

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_random_programs_with_branches_and_cas(self, seed):
        program = random_wwrf_program(
            seed,
            GeneratorConfig(instrs_per_thread=4, allow_branches=True, allow_cas=True),
        )
        assert behaviors(program).traces == behaviors(program, DPOR).traces

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=60))
    def test_promise_heavy_configs(self, seed):
        """``por="dpor"`` must stay behavior-equal even where the
        soundness gate downgrades it to the fused BFS."""
        program = random_wwrf_program(
            seed, GeneratorConfig(threads=2, instrs_per_thread=3)
        )
        base = SemanticsConfig(
            promise_oracle=SyntacticPromises(budget=1, max_outstanding=1)
        )
        plain = behaviors(program, base)
        reduced = behaviors(program, dataclasses.replace(base, por="dpor"))
        assert plain.traces == reduced.traces


class TestCycleProviso:
    def test_infinite_print_loop(self):
        """A looping thread exercises the back-edge rule: without the
        cycle proviso the one-shot printer could be ignored forever and
        its output lost from the behavior set."""
        pb = ProgramBuilder()
        block = pb.function("spin").block("loop")
        block.print_(Const(1))
        block.jmp("loop")
        pb.function("shot").block("entry").print_(Const(2))
        pb.thread("spin").thread("shot")
        program = pb.build()
        plain = behaviors(program, SemanticsConfig(por="none", max_outputs=4))
        reduced = behaviors(program, SemanticsConfig(por="dpor", max_outputs=4))
        assert plain.traces == reduced.traces
        explorer = Explorer(program, SemanticsConfig(por="dpor", max_outputs=4))
        explorer.build()
        assert explorer.dpor_stats.full_expansions > 0


class TestStatsAndGating:
    def test_stats_populated_and_states_reduced(self):
        explorer = Explorer(sb(), DPOR)
        result = explorer.behaviors()
        stats = explorer.dpor_stats
        assert stats is not None
        assert stats.nodes == result.state_count
        assert stats.sleep_skips + stats.sleep_blocked > 0
        assert stats.backtrack_points > 0
        assert result.state_count < behaviors(sb()).state_count
        assert explorer.por_downgrade is None
        assert set(stats.as_dict()) == {
            "nodes", "transitions", "sleep_skips", "sleep_blocked",
            "backtrack_points", "full_expansions", "promise_footprints",
            "source_skips", "wakeup_sequences", "wakeup_nodes",
            "redundant_executions",
        }
        assert stats.as_dict()["redundant_executions"] == stats.sleep_blocked

    def test_promise_config_runs_dpor_with_window_footprints(self):
        """Promise configs no longer downgrade: the certification-scoped
        footprint relation keeps DPOR sound, and the promise-footprint
        counter proves the window path actually ran."""
        config = SemanticsConfig(
            promise_oracle=SyntacticPromises(budget=2, max_outstanding=2),
            por="dpor",
        )
        explorer = Explorer(sb(), config)
        explorer.build()
        assert explorer.por_downgrade is None
        stats = explorer.dpor_stats
        assert stats is not None and stats.nodes > 0
        assert stats.promise_footprints > 0
        assert not explorer.config.fuse_local_steps

    def test_conservative_mode_is_behavior_equal_and_not_smaller(self):
        """``--por-conservative`` (all-dependent footprints) is the
        soundness oracle: same traces, at least as many states as the
        precise relation."""
        config = SemanticsConfig(
            promise_oracle=SyntacticPromises(budget=1, max_outstanding=1),
            por="dpor",
        )
        precise = Explorer(sb(), config)
        precise_set = precise.behaviors()
        conservative = Explorer(
            sb(), dataclasses.replace(config, por_conservative=True)
        )
        conservative_set = conservative.behaviors()
        assert precise_set.traces == conservative_set.traces
        assert conservative_set.state_count >= precise_set.state_count
        assert conservative.dpor_stats.promise_footprints == 0

    def test_nonpreemptive_machine_ignores_dpor(self):
        """DPOR models the interleaving machine's switches; ``--np`` has
        its own (coarser) scheduling discipline."""
        explorer = Explorer(sb(), DPOR, nonpreemptive=True)
        explorer.build()
        assert explorer.dpor_stats is None
        assert explorer.por_downgrade == "nonpreemptive"

    def test_gap_leaving_writes_downgrades_with_reason(self):
        """Gap-leaving placements interact with cross-location timestamp
        renormalization; the explorer records the structured downgrade."""
        explorer = Explorer(
            sb(), dataclasses.replace(DPOR, gap_leaving_writes=True)
        )
        explorer.build()
        assert explorer.dpor_stats is None
        assert explorer.por_downgrade == "gap-leaving-writes"
        assert explorer.config.fuse_local_steps


class TestCheckpointResume:
    def test_interrupted_dpor_resumes_to_identical_behaviors(self):
        program = LITMUS_SUITE["2+2W"].program
        unreduced = behaviors(program)
        uninterrupted = behaviors(program, DPOR)
        first = Explorer(program, DPOR)
        first.build(meter=Budget(max_states=10).start())
        checkpoint = first.snapshot()
        assert checkpoint.dpor is not None  # live DFS stack persisted
        resumed = Explorer.resume(checkpoint, program, DPOR).behaviors()
        assert resumed.traces == uninterrupted.traces == unreduced.traces
        assert resumed.state_count == uninterrupted.state_count

    def test_checkpoint_file_round_trip(self, tmp_path):
        from repro.robust.checkpoint import load_checkpoint, save_checkpoint

        program = sb()
        explorer = Explorer(program, DPOR)
        explorer.build(meter=Budget(max_states=8).start())
        path = str(tmp_path / "dpor.ckpt")
        save_checkpoint(explorer.snapshot(), path)
        resumed = Explorer.resume(load_checkpoint(path), program, DPOR)
        assert resumed.behaviors().traces == behaviors(program).traces

    def test_pre_dpor_checkpoint_still_resumes(self):
        """Checkpoints written before the ``dpor`` field existed load and
        resume as plain BFS (readers use ``getattr``)."""
        program = sb()
        explorer = Explorer(program, SemanticsConfig())
        explorer.build(meter=Budget(max_states=10).start())
        checkpoint = explorer.snapshot()
        # Simulate the old schema: an unpickled pre-field checkpoint has
        # no ``dpor`` in its instance dict; the class default covers it.
        object.__delattr__(checkpoint, "dpor")
        assert "dpor" not in checkpoint.__dict__
        assert getattr(checkpoint, "dpor", None) is None
        resumed = Explorer.resume(checkpoint, program)
        assert resumed.behaviors().traces == behaviors(program).traces

    def test_mid_wakeup_tree_interruption_sweep(self):
        """Interrupt the DFS at every small state cap — crossing points
        where wakeup sequences are live on the stack — and resume each
        checkpoint to completion with identical behaviors."""
        program = LITMUS_SUITE["2+2W"].program
        full = Explorer(program, DPOR)
        expected = full.behaviors()
        # The full run records wakeup sequences, so the cap sweep below
        # necessarily snapshots mid-wakeup-tree states.
        assert full.dpor_stats.wakeup_sequences > 0
        unreduced = behaviors(program).traces
        assert expected.traces == unreduced
        for cap in (3, 5, 8, 13, 21):
            first = Explorer(program, DPOR)
            first.build(meter=Budget(max_states=cap).start())
            resumed = Explorer.resume(first.snapshot(), program, DPOR).behaviors()
            assert resumed.traces == unreduced, cap

    def test_pre_source_set_checkpoint_payload_migrates(self):
        """A checkpoint written by the PR-8 sleep-set core — frozenset
        location footprints, no wakeup fields on the stack nodes, the
        shorter stats record — migrates on resume and finishes with the
        right behaviors."""
        from types import SimpleNamespace

        from repro.semantics.dpor import FootprintIndex

        program = sb()
        explorer = Explorer(program, DPOR)
        explorer.build(meter=Budget(max_states=8).start())
        checkpoint = explorer.snapshot()
        stack, visited, summaries, stats = checkpoint.dpor
        assert stack  # the DFS really was interrupted mid-flight
        loc_bit = FootprintIndex(program, DPOR).loc_bit

        def downgrade(fp):
            reads, writes, flags = fp
            unmask = lambda m: frozenset(  # noqa: E731
                loc for loc, b in loc_bit.items() if m & b
            )
            return (unmask(reads), unmask(writes), flags)

        for node in stack:
            node.fp = {tid: downgrade(fp) for tid, fp in node.fp.items()}
            node.summary = {
                tid: downgrade(fp) for tid, fp in node.summary.items()
            }
            for name in ("scripts", "hint", "child_hint"):
                delattr(node, name)
        for summary in summaries.values():
            for tid in list(summary):
                summary[tid] = downgrade(summary[tid])
        old_stats = SimpleNamespace(
            nodes=stats.nodes,
            transitions=stats.transitions,
            sleep_skips=stats.sleep_skips,
            sleep_blocked=stats.sleep_blocked,
            backtrack_points=stats.backtrack_points,
            full_expansions=stats.full_expansions,
        )
        object.__setattr__(
            checkpoint, "dpor", (stack, visited, summaries, old_stats)
        )
        resumed = Explorer.resume(checkpoint, program, DPOR)
        assert resumed.behaviors().traces == behaviors(program).traces
        assert resumed.dpor_stats.nodes >= stats.nodes


class TestNewlyEnabledCorpora:
    """The configurations PR 8 downgraded to fused BFS — promises,
    reservations, their mix — now run real DPOR; three-way behavior-set
    equality {none, fusion, dpor} is the oracle, with the conservative
    all-dependent mode as a differential check on the precise relation."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_promise_corpus_three_way(self, seed):
        program = random_wwrf_program(
            seed, GeneratorConfig(threads=2, instrs_per_thread=3)
        )
        base = SemanticsConfig(
            promise_oracle=SyntacticPromises(budget=1, max_outstanding=1)
        )
        plain = behaviors(program, base)
        fused = behaviors(program, dataclasses.replace(base, por="fusion"))
        reduced = behaviors(program, dataclasses.replace(base, por="dpor"))
        assert plain.traces == fused.traces == reduced.traces

    # Reservation configs cannot be equality-tested through full
    # exploration: reserve steps stack reservations at ever-higher
    # timestamps, so the reachable state space is infinite (which is why
    # reservations are off by default and their semantics tests drive
    # ``thread_steps`` directly).  Instead we pin down the two properties
    # the DPOR core relies on for reservation soundness: footprints
    # degenerate to all-dependent, and finishing threads fold their
    # reachable cancel variants into the finishing macro-step.

    def test_reservation_footprints_are_all_dependent(self):
        """With reservations enabled a non-done thread may reserve *any*
        location next, so its footprint must conflict with every write —
        DPOR degenerates to full expansion rather than pruning."""
        from repro.semantics.dpor import FootprintIndex
        from repro.semantics.threadstate import initial_thread_state

        program = sb()
        config = SemanticsConfig(enable_reservations=True, por="dpor")
        index = FootprintIndex(program, config)
        ts = initial_thread_state(program, program.threads[0])
        fp = index.thread_footprint(ts)
        assert fp[1] == index.universe  # writes cover every location
        other = initial_thread_state(program, program.threads[1])
        assert dependent(fp, index.thread_footprint(other))

    def test_finished_thread_cancel_closure(self):
        """A thread that runs to ``done`` holding a reservation is
        unswitchable (the machine skips done threads without concrete
        promises), so DPOR must reach its cancel variants while the
        thread is still current.  The closure enumerates them."""
        from repro.lang.builder import straightline_program
        from repro.lang.syntax import AccessMode, Store
        from repro.memory.memory import Memory
        from repro.semantics.dpor import _cancel_closure
        from repro.semantics.events import ReserveEvent
        from repro.semantics.thread import thread_steps
        from repro.semantics.threadstate import initial_thread_state

        program = straightline_program(
            [[Store("x", Const(1), AccessMode.NA)]]
        )
        config = SemanticsConfig(enable_reservations=True, por="dpor")
        ts = initial_thread_state(program, "t1")
        mem = Memory.initial(sorted(program.locations()))
        reserved = next(
            (new_ts, new_mem)
            for event, new_ts, new_mem in thread_steps(program, ts, mem, config)
            if isinstance(event, ReserveEvent)
        )
        ts, mem = reserved
        # Run the thread to completion while it still holds the reservation.
        while not ts.local.done:
            ts, mem = next(
                (new_ts, new_mem)
                for event, new_ts, new_mem in thread_steps(
                    program, ts, mem, config
                )
                if not isinstance(event, ReserveEvent)
            )
        assert any(item.is_reservation for item in ts.promises)
        closure = _cancel_closure(program, ts, mem, config)
        # The cancelled variant (no reservation left) is reachable.
        assert any(
            not any(item.is_reservation for item in c_ts.promises)
            for c_ts, _ in closure
        )

    def test_sc_fence_promise_program(self):
        program = sb_with_sc_fences()
        base = SemanticsConfig(
            promise_oracle=SyntacticPromises(budget=1, max_outstanding=1)
        )
        plain = behaviors(program, base)
        reduced = behaviors(program, dataclasses.replace(base, por="dpor"))
        assert plain.traces == reduced.traces
        assert (0, 0) not in reduced.outputs()  # SC fences still forbid SB

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_conservative_differential(self, seed):
        program = random_wwrf_program(
            seed, GeneratorConfig(threads=2, instrs_per_thread=3)
        )
        base = SemanticsConfig(
            promise_oracle=SyntacticPromises(budget=1, max_outstanding=1),
            por="dpor",
        )
        precise = behaviors(program, base)
        oracle = behaviors(
            program, dataclasses.replace(base, por_conservative=True)
        )
        assert precise.traces == oracle.traces
