"""Randomized runner tests: determinism by seed, sampled outputs within
the exhaustive behavior set."""


from repro.litmus.library import sb
from repro.semantics.exploration import behaviors
from repro.semantics.random_run import random_run, sample_outputs


def test_terminates_on_simple_program():
    result = random_run(sb(), seed=1)
    assert result.terminated
    assert len(result.outputs) == 2


def test_deterministic_by_seed():
    a = random_run(sb(), seed=42)
    b = random_run(sb(), seed=42)
    assert a.trace == b.trace


def test_sampled_outputs_within_exhaustive_set():
    exhaustive = behaviors(sb()).outputs()
    for outs in sample_outputs(sb(), runs=50, seed=7):
        assert outs in exhaustive


def test_nonpreemptive_runner():
    result = random_run(sb(), seed=3, nonpreemptive=True)
    assert result.terminated


def test_step_budget_reported():
    # An infinite loop cannot terminate: the runner gives up at max_steps.
    from repro.lang.builder import ProgramBuilder

    pb = ProgramBuilder()
    pb.function("f").block("spin").jmp("spin")
    pb.thread("f")
    result = random_run(pb.build(), seed=0, max_steps=100)
    assert not result.terminated
    assert result.steps == 100


def test_switch_bias_zero_still_progresses():
    result = random_run(sb(), seed=5, switch_bias=0.0)
    assert result.terminated


def test_sb_sampling_finds_multiple_outcomes():
    """With enough runs, sampling should surface at least two distinct SB
    outcomes (all four exist; two is a safe statistical floor)."""
    outcomes = set(sample_outputs(sb(), runs=80, seed=11))
    assert len(outcomes) >= 2
