"""Extended litmus suite: 2+2W, IRIW, CoWR, fence-SB."""

import pytest

from repro.litmus.library import cowr, iriw_rlx, sb_with_sc_fences, two_plus_two_w
from repro.semantics.exploration import behaviors
from repro.semantics.sc import sc_behaviors


def outputs(program, config=None):
    result = behaviors(program, config)
    assert result.exhaustive
    return result.outputs()


class TestTwoPlusTwoW:
    def test_final_state_nondeterminism(self):
        outs = outputs(two_plus_two_w())
        # The observer may see either order of each location's two writes.
        assert (1, 1) in outs  # both "first" writes win
        assert (2, 2) in outs  # both "second" writes win
        assert (1, 2) in outs and (2, 1) in outs

    def test_sc_subset(self):
        assert sc_behaviors(two_plus_two_w()).traces <= behaviors(two_plus_two_w()).traces


class TestIriw:
    @pytest.fixture(scope="class")
    def iriw_outs(self):
        return outputs(iriw_rlx())

    def test_readers_may_disagree_under_rlx(self, iriw_outs):
        """The hallmark IRIW outcome: both readers print 10 — reader A saw
        x's write but not y's, reader B the reverse."""
        assert (10, 10) in iriw_outs

    def test_per_reader_outcome_alphabet(self, iriw_outs):
        """Each reader independently prints any of {0, 1, 10, 11}."""
        values = {v for out in iriw_outs for v in out}
        assert values == {0, 1, 10, 11}

    def test_sc_forbids_disagreement(self):
        sc_outs = sc_behaviors(iriw_rlx()).outputs()
        assert (10, 10) not in sc_outs
        assert all(sorted(o) != [10, 10] for o in sc_outs)


class TestCoWR:
    def test_own_write_not_unread(self):
        """After writing x the writer can never observe the initial 0."""
        outs = outputs(cowr())
        assert all(o[0] != 0 for o in outs)

    def test_other_write_still_visible(self):
        outs = outputs(cowr())
        assert (1,) in outs and (2,) in outs


class TestScFences:
    def test_sc_fences_forbid_sb(self):
        """The global SC view totally orders the fences: (0,0) is gone."""
        outs = outputs(sb_with_sc_fences())
        assert (0, 0) not in outs
        assert (1, 1) in outs

    def test_sc_view_published_only_by_sc_fences(self):
        """rel/acq fences alone do not forbid the SB outcome."""
        from repro.lang.builder import straightline_program
        from repro.lang.syntax import Const, Fence, FenceKind, Load, Print, Reg, Store
        from repro.lang.syntax import AccessMode as AM

        program = straightline_program(
            [
                [Store("x", Const(1), AM.RLX), Fence(FenceKind.REL),
                 Fence(FenceKind.ACQ), Load("r1", "y", AM.RLX), Print(Reg("r1"))],
                [Store("y", Const(1), AM.RLX), Fence(FenceKind.REL),
                 Fence(FenceKind.ACQ), Load("r2", "x", AM.RLX), Print(Reg("r2"))],
            ],
            atomics={"x", "y"},
        )
        assert (0, 0) in outputs(program)
