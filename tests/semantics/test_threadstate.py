"""Direct unit tests for LocalState / ThreadState / thread pools."""


from repro.lang.builder import straightline_program
from repro.lang.syntax import Return, Skip
from repro.lang.values import Int32
from repro.memory.memory import Memory
from repro.memory.message import Message, Reservation
from repro.memory.timestamps import ts
from repro.semantics.threadstate import (
    LocalState,
    ThreadState,
    initial_thread_state,
    next_op,
    update_pool,
)


class TestLocalState:
    def test_registers_default_zero(self):
        local = LocalState("f", "entry", 0)
        assert local.get_reg("anything") == 0

    def test_set_reg(self):
        local = LocalState("f", "entry", 0).set_reg("r", Int32(5))
        assert local.get_reg("r") == 5

    def test_zero_registers_not_stored(self):
        local = LocalState("f", "entry", 0).set_reg("r", Int32(0))
        assert local.regs == ()

    def test_reg_normalization_makes_states_equal(self):
        a = LocalState("f", "entry", 0, regs=(("r", Int32(1)), ("s", Int32(0))))
        b = LocalState("f", "entry", 0, regs=(("r", Int32(1)),))
        assert a == b
        assert hash(a) == hash(b)

    def test_str(self):
        assert "entry" in str(LocalState("f", "entry", 2))
        assert "done" in str(LocalState("f", "entry", 0, done=True))


class TestNextOp:
    def test_instruction_then_terminator(self):
        program = straightline_program([[Skip()]])
        local = LocalState("t1", "entry", 0)
        assert isinstance(next_op(program, local), Skip)
        local_at_term = LocalState("t1", "entry", 1)
        assert isinstance(next_op(program, local_at_term), Return)

    def test_done_thread_has_no_op(self):
        program = straightline_program([[Skip()]])
        assert next_op(program, LocalState("t1", "entry", 0, done=True)) is None


class TestThreadState:
    def test_initial(self):
        program = straightline_program([[Skip()]])
        state = initial_thread_state(program, "t1", promise_budget=3)
        assert state.local.func == "t1"
        assert state.promise_budget == 3
        assert not state.has_promises

    def test_has_promises_only_counts_concrete(self):
        program = straightline_program([[Skip()]])
        state = initial_thread_state(program, "t1")
        with_reservation = state.replace(promises=Memory((Reservation("x", ts(0), ts(1)),))
        )
        assert not with_reservation.has_promises
        with_promise = state.replace(promises=Memory((Message("x", Int32(1), ts(0), ts(1)),))
        )
        assert with_promise.has_promises

    def test_with_view_and_local(self):
        from repro.memory.timemap import view_of

        program = straightline_program([[Skip()]])
        state = initial_thread_state(program, "t1")
        view = view_of({"x": ts(1)})
        assert state.with_view(view).view == view
        new_local = state.local.set_reg("r", Int32(2))
        assert state.with_local(new_local).local.get_reg("r") == 2


def test_update_pool():
    program = straightline_program([[Skip()], [Skip()]])
    a = initial_thread_state(program, "t1")
    b = initial_thread_state(program, "t2")
    pool = (a, b)
    replacement = a.with_local(a.local.set_reg("r", Int32(9)))
    updated = update_pool(pool, 0, replacement)
    assert updated[0].local.get_reg("r") == 9
    assert updated[1] is b
