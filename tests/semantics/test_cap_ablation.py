"""Ablation: certification against the raw memory instead of the capped
memory (paper Sec. 2.1: "Certifying promises only from the current memory
is insufficient").

The scenario is the paper's own motivation: a thread promises a write that
it can only fulfill if its CAS succeeds.  Against the raw memory the CAS
succeeds in isolation; against the capped memory the adjacent interval is
reserved and certification fails.  The behavioral consequence: with the
ablated certification the promise goes through and another thread can
observe a value that full PS2.1 forbids when the competing CAS wins."""


from repro.litmus.library import promise_via_cas
from repro.semantics.exploration import behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig


competing_cas_program = promise_via_cas


def traces(certify_against_cap: bool):
    config = SemanticsConfig(
        promise_oracle=SyntacticPromises(budget=1, max_outstanding=1),
        certify_against_cap=certify_against_cap,
    )
    result = behaviors(competing_cas_program(), config)
    assert result.exhaustive
    return result.traces


def test_capped_certification_forbids_promise_through_cas():
    """Full PS2.1: if t2's CAS won, t1's CAS fails, so z := 7 can never be
    both promised and observed by a winning t2 — out(7) never appears, not
    even as a trace prefix."""
    assert (7,) not in traces(True)


def test_ablated_certification_admits_the_bad_outcome():
    """Without the cap, t1 certifies the promise assuming its own CAS wins;
    t2 then reads the promised 7 *and* wins the CAS.  t1 is now a zombie
    with an unfulfillable promise (so the execution never reaches the
    ``done`` marker), but out(7) is already an observable trace — exactly
    the behavior the capped memory exists to forbid."""
    assert (7,) in traces(False)


def test_ablation_only_adds_behaviors():
    assert traces(True) <= traces(False)
