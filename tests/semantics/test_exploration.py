"""Explorer and behavior-set tests: prefix closure, truncation, loops."""

import pytest

from repro.lang.builder import ProgramBuilder, binop, straightline_program
from repro.lang.syntax import Const, Print, Skip
from repro.semantics.events import EVENT_DONE
from repro.semantics.exploration import ExplorationBoundExceeded, Explorer, behaviors
from repro.semantics.thread import SemanticsConfig


class TestBasics:
    def test_empty_program_terminates(self):
        program = straightline_program([[Skip()]])
        result = behaviors(program)
        assert result.exhaustive
        assert ((EVENT_DONE,)) in result.traces
        assert () in result.traces  # prefix closure

    def test_single_output(self):
        program = straightline_program([[Print(Const(3))]])
        result = behaviors(program)
        assert result.terminal_traces() == frozenset({(3, EVENT_DONE)})
        assert result.outputs() == frozenset({(3,)})

    def test_prefix_closure(self):
        program = straightline_program([[Print(Const(1)), Print(Const(2))]])
        traces = behaviors(program).traces
        assert () in traces
        assert (1,) in traces
        assert (1, 2) in traces
        assert (1, 2, EVENT_DONE) in traces

    def test_output_interleavings(self):
        program = straightline_program([[Print(Const(1))], [Print(Const(2))]])
        outs = behaviors(program).outputs()
        assert outs == frozenset({(1, 2), (2, 1)})


class TestLoops:
    def test_terminating_loop(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        f.block("entry").assign("i", 0)
        f.block("entry").jmp("loop")
        f.block("loop").be(binop("<", "i", 3), "body", "end")
        body = f.block("body")
        body.assign("i", binop("+", "i", 1))
        body.jmp("loop")
        end = f.block("end")
        end.print_("i")
        end.ret()
        pb.thread("f")
        result = behaviors(pb.build())
        assert result.exhaustive
        assert result.outputs() == frozenset({(3,)})

    def test_infinite_silent_loop_has_no_done_trace(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        f.block("spin").jmp("spin")
        pb.thread("f")
        result = behaviors(pb.build())
        assert result.exhaustive  # the state graph is finite (one cycle)
        assert result.terminal_traces() == frozenset()
        assert result.traces == frozenset({()})

    def test_productive_infinite_loop_capped_by_max_outputs(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        loop = f.block("loop")
        loop.print_(1)
        loop.jmp("loop")
        pb.thread("f")
        config = SemanticsConfig(max_outputs=3)
        result = behaviors(pb.build(), config)
        longest = max(len([e for e in t if not isinstance(e, str)]) for t in result.traces)
        assert longest == 3
        assert result.terminal_traces() == frozenset()


class TestBounds:
    def test_truncation_reported(self):
        program = straightline_program([[Print(Const(1))], [Print(Const(2))]])
        config = SemanticsConfig(max_states=3)
        result = behaviors(program, config)
        assert not result.exhaustive

    def test_strict_mode_raises(self):
        program = straightline_program([[Print(Const(1))], [Print(Const(2))]])
        config = SemanticsConfig(max_states=3)
        with pytest.raises(ExplorationBoundExceeded):
            behaviors(program, config, strict=True)

    def test_dropped_edges_counted_and_reported(self):
        program = straightline_program([[Print(Const(1))], [Print(Const(2))]])
        config = SemanticsConfig(max_states=3)
        result = behaviors(program, config)
        # The cap silently discarded successors; the count says how many.
        assert result.dropped_edges > 0
        assert f"{result.dropped_edges} edges dropped" in str(result)

    def test_exhaustive_run_drops_nothing(self):
        program = straightline_program([[Print(Const(1))], [Print(Const(2))]])
        result = behaviors(program, SemanticsConfig())
        assert result.exhaustive and result.dropped_edges == 0
        assert "dropped" not in str(result)


class TestExplorerReuse:
    def test_build_idempotent(self):
        program = straightline_program([[Skip()]])
        explorer = Explorer(program, SemanticsConfig())
        explorer.build()
        count = len(explorer.states)
        explorer.build()
        assert len(explorer.states) == count

    def test_states_accessible_for_scanning(self):
        program = straightline_program([[Skip()]])
        explorer = Explorer(program, SemanticsConfig()).build()
        assert all(hasattr(s, "pool") for s in explorer.states)


class TestBehaviorSetApi:
    def test_refines_reflexive(self):
        program = straightline_program([[Print(Const(1))]])
        b = behaviors(program)
        assert b.refines(b)
        assert b <= b

    def test_refines_strict(self):
        small = behaviors(straightline_program([[Print(Const(1))]]))
        # A program with strictly more behaviors: prints 1 or 2 by race.
        big = behaviors(straightline_program([[Print(Const(1))], [Print(Const(2))]]))
        assert not big.refines(small)
