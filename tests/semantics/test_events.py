"""Direct unit tests for the event vocabulary."""

import pytest

from repro.lang.syntax import AccessMode, FenceKind
from repro.lang.values import Int32
from repro.semantics.events import (
    EVENT_DONE,
    CancelEvent,
    EventClass,
    FenceEvent,
    OutputEvent,
    PromiseEvent,
    ReadEvent,
    ReserveEvent,
    SilentEvent,
    UpdateEvent,
    WriteEvent,
    event_class,
    format_trace,
)


class TestEventValues:
    def test_output_normalizes_value(self):
        assert OutputEvent(2**32 + 5).value == 5

    def test_read_write_normalize(self):
        assert ReadEvent(AccessMode.RLX, "x", 2**31).value == -(2**31)
        assert WriteEvent(AccessMode.NA, "x", -1).value == -1

    def test_update_normalizes_both(self):
        event = UpdateEvent(AccessMode.RLX, AccessMode.RLX, "x", 2**32, 1)
        assert event.read_value == 0 and event.write_value == 1

    def test_events_hashable_and_comparable(self):
        a = ReadEvent(AccessMode.NA, "x", Int32(1))
        b = ReadEvent(AccessMode.NA, "x", 1)
        assert a == b and hash(a) == hash(b)
        assert a != ReadEvent(AccessMode.RLX, "x", 1)


class TestRendering:
    def test_str_forms(self):
        assert str(SilentEvent()) == "tau"
        assert str(OutputEvent(3)) == "out(3)"
        assert str(ReadEvent(AccessMode.ACQ, "x", 1)) == "R(acq, x, 1)"
        assert str(WriteEvent(AccessMode.REL, "y", 2)) == "W(rel, y, 2)"
        assert "U(rlx, rel, x, 0, 1)" == str(
            UpdateEvent(AccessMode.RLX, AccessMode.REL, "x", 0, 1)
        )
        assert str(PromiseEvent("x", 1)) == "prm(x, 1)"
        assert str(ReserveEvent("x")) == "rsv(x)"
        assert str(CancelEvent("x")) == "ccl(x)"
        assert str(FenceEvent(FenceKind.SC)) == "fence(sc)"

    def test_format_trace(self):
        assert format_trace((Int32(1), Int32(2), EVENT_DONE)) == "[out(1), out(2), done]"
        assert format_trace(()) == "[]"


class TestClassification:
    @pytest.mark.parametrize(
        "event,expected",
        [
            (SilentEvent(), EventClass.NA),
            (ReadEvent(AccessMode.NA, "x", 0), EventClass.NA),
            (WriteEvent(AccessMode.NA, "x", 0), EventClass.NA),
            (ReadEvent(AccessMode.RLX, "x", 0), EventClass.AT),
            (ReadEvent(AccessMode.ACQ, "x", 0), EventClass.AT),
            (WriteEvent(AccessMode.RLX, "x", 0), EventClass.AT),
            (WriteEvent(AccessMode.REL, "x", 0), EventClass.AT),
            (UpdateEvent(AccessMode.RLX, AccessMode.RLX, "x", 0, 1), EventClass.AT),
            (OutputEvent(0), EventClass.AT),
            (FenceEvent(FenceKind.REL), EventClass.AT),
            (PromiseEvent("x", 0), EventClass.PRC),
            (ReserveEvent("x"), EventClass.PRC),
            (CancelEvent("x"), EventClass.PRC),
        ],
        ids=lambda v: str(v),
    )
    def test_classes(self, event, expected):
        if isinstance(event, EventClass):
            pytest.skip("parameter")
        assert event_class(event) is expected
