"""Reservation/cancel step tests (paper Sec. 3, rsv/ccl events).

Reservations are off by default (DESIGN.md: canonical placement covers the
litmus behaviors); these tests exercise the steps themselves and their
non-preemptive discipline when enabled."""

import pytest

from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Const, Skip, Store
from repro.memory.memory import Memory
from repro.memory.message import Reservation
from repro.semantics.events import CancelEvent, ReserveEvent
from repro.semantics.thread import SemanticsConfig, thread_steps
from repro.semantics.threadstate import initial_thread_state

CFG = SemanticsConfig(enable_reservations=True)


def setup():
    program = straightline_program([[Store("x", Const(1), AccessMode.NA), Skip()]])
    ts = initial_thread_state(program, "t1")
    mem = Memory.initial(["x"])
    return program, ts, mem


def test_reserve_steps_offered_when_enabled():
    program, ts, mem = setup()
    events = [e for e, _, _ in thread_steps(program, ts, mem, CFG)]
    assert any(isinstance(e, ReserveEvent) for e in events)


def test_reserve_steps_absent_by_default():
    program, ts, mem = setup()
    events = [e for e, _, _ in thread_steps(program, ts, mem, SemanticsConfig())]
    assert not any(isinstance(e, ReserveEvent) for e in events)


def test_reserve_adds_to_promises_and_memory():
    program, ts, mem = setup()
    for event, ts2, mem2 in thread_steps(program, ts, mem, CFG):
        if isinstance(event, ReserveEvent):
            reservations = [m for m in mem2 if m.is_reservation]
            assert len(reservations) == 1
            assert reservations[0] in ts2.promises.items
            return
    pytest.fail("no reserve step found")


def test_cancel_removes_reservation():
    program, ts, mem = setup()
    reserved = None
    for event, ts2, mem2 in thread_steps(program, ts, mem, CFG):
        if isinstance(event, ReserveEvent):
            reserved = (ts2, mem2)
            break
    assert reserved is not None
    ts2, mem2 = reserved
    cancels = [
        (e, ts3, mem3)
        for e, ts3, mem3 in thread_steps(program, ts2, mem2, CFG)
        if isinstance(e, CancelEvent)
    ]
    assert len(cancels) == 1
    _, ts3, mem3 = cancels[0]
    assert not any(m.is_reservation for m in mem3)
    assert len(ts3.promises) == 0


def test_reservation_blocks_other_writers():
    """An interval reserved by one thread is unusable by another's write."""
    program, ts, mem = setup()
    mem = mem.add(Reservation("x", Memory.initial(["x"]).latest_ts("x"), 1))
    candidates = mem.candidate_intervals("x", 0)
    assert all(to > 1 for _, to in candidates)


def test_reservations_not_concrete_promises():
    """A thread holding only reservations is considered promise-free for
    certification purposes."""
    
    program, ts, mem = setup()
    reservation = Reservation("x", 0, 1)
    ts2 = ts.replace(promises=Memory((reservation,)))
    assert not ts2.has_promises


def test_np_discipline_reserve_needs_free_bit():
    """rsv is a PRC event: forbidden inside a non-atomic block."""
    from repro.semantics.nonpreemptive import SwitchBit, initial_np_state, np_machine_steps
    from repro.semantics.machine import SwitchEvent

    program = straightline_program(
        [[Store("a", Const(1), AccessMode.NA), Store("b", Const(2), AccessMode.NA)]]
    )
    state = initial_np_state(program, CFG)

    def reserve_successors(state):
        out = []
        for event, succ in np_machine_steps(program, state, CFG):
            if isinstance(event, SwitchEvent):
                continue
            cur = succ.pool[state.cur]
            if any(m.is_reservation for m in cur.promises):
                out.append(succ)
        return out

    assert reserve_successors(state)  # bit ◦: reservations allowed
    # Take the first na store; bit is now •.
    locked = next(
        succ
        for event, succ in np_machine_steps(program, state, CFG)
        if not isinstance(event, SwitchEvent)
        and not any(m.is_reservation for m in succ.pool[0].promises)
        and not any(m.is_reservation for m in succ.mem)
    )
    assert locked.bit is SwitchBit.LOCKED
    assert reserve_successors(locked) == []
