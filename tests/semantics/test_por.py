"""Local-step fusion (partial-order reduction): behavior preservation is
the whole point — property-tested against the unreduced explorer."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.litmus.library import LITMUS_SUITE
from repro.races.wwrf import ww_rf
from repro.semantics.exploration import behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig

FUSED = SemanticsConfig(fuse_local_steps=True)


@pytest.mark.parametrize("name", sorted(LITMUS_SUITE))
def test_fusion_preserves_behaviors_on_suite(name):
    test = LITMUS_SUITE[name]
    base = SemanticsConfig()
    if test.promise_budget:
        base = SemanticsConfig(
            promise_oracle=SyntacticPromises(
                budget=test.promise_budget, max_outstanding=test.promise_budget
            )
        )
    fused = dataclasses.replace(base, fuse_local_steps=True)
    plain_result = behaviors(test.program, base)
    fused_result = behaviors(test.program, fused)
    assert plain_result.traces == fused_result.traces, name
    assert fused_result.state_count <= plain_result.state_count


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_fusion_preserves_behaviors_on_random_programs(seed):
    program = random_wwrf_program(seed, GeneratorConfig(instrs_per_thread=5))
    plain_result = behaviors(program)
    fused_result = behaviors(program, FUSED)
    assert plain_result.traces == fused_result.traces


def test_fusion_preserves_wwrf_verdicts():
    from repro.lang.builder import straightline_program
    from repro.lang.syntax import AccessMode, Assign, Const, Store

    racy = straightline_program(
        [
            [Assign("r", Const(1)), Store("a", Const(1), AccessMode.NA)],
            [Store("a", Const(2), AccessMode.NA)],
        ]
    )
    assert ww_rf(racy).race_free == ww_rf(racy, FUSED).race_free


def test_fusion_reduces_states_substantially():
    from repro.litmus.library import sb

    plain_result = behaviors(sb())
    fused_result = behaviors(sb(), FUSED)
    assert fused_result.state_count < plain_result.state_count


def test_fusion_does_not_fuse_prints():
    """Output steps are observable and must keep interleaving freely."""
    from repro.lang.builder import straightline_program
    from repro.lang.syntax import Const, Print

    program = straightline_program([[Print(Const(1))], [Print(Const(2))]])
    assert behaviors(program, FUSED).outputs() == frozenset({(1, 2), (2, 1)})
