"""Non-preemptive machine tests (paper Fig. 10): switch-bit discipline."""


from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Const, Print, Skip, Store
from repro.semantics.events import (
    EventClass,
    FenceEvent,
    OutputEvent,
    PromiseEvent,
    ReadEvent,
    SilentEvent,
    UpdateEvent,
    WriteEvent,
    event_class,
)
from repro.semantics.machine import SwitchEvent
from repro.semantics.nonpreemptive import (
    SwitchBit,
    initial_np_state,
    np_machine_steps,
)
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig
from repro.lang.syntax import FenceKind
from repro.lang.values import Int32

CFG = SemanticsConfig()


class TestEventClassification:
    def test_na_class(self):
        assert event_class(SilentEvent()) is EventClass.NA
        assert event_class(ReadEvent(AccessMode.NA, "x", Int32(0))) is EventClass.NA
        assert event_class(WriteEvent(AccessMode.NA, "x", Int32(0))) is EventClass.NA

    def test_at_class(self):
        assert event_class(ReadEvent(AccessMode.RLX, "x", Int32(0))) is EventClass.AT
        assert event_class(ReadEvent(AccessMode.ACQ, "x", Int32(0))) is EventClass.AT
        assert event_class(WriteEvent(AccessMode.REL, "x", Int32(0))) is EventClass.AT
        assert event_class(OutputEvent(Int32(1))) is EventClass.AT
        assert (
            event_class(UpdateEvent(AccessMode.RLX, AccessMode.RLX, "x", Int32(0), Int32(1)))
            is EventClass.AT
        )
        assert event_class(FenceEvent(FenceKind.ACQ)) is EventClass.AT

    def test_prc_class(self):
        assert event_class(PromiseEvent("x", Int32(1))) is EventClass.PRC


def na_block_program():
    """t1 runs a two-instruction non-atomic block then prints."""
    return straightline_program(
        [
            [Store("a", Const(1), AccessMode.NA), Store("b", Const(2), AccessMode.NA),
             Print(Const(7))],
            [Skip()],
        ]
    )


def run_one(program, state, predicate):
    for event, succ in np_machine_steps(program, state, CFG):
        if predicate(event):
            return succ
    raise AssertionError("no matching step")


class TestSwitchBit:
    def test_na_step_locks(self):
        program = na_block_program()
        state = initial_np_state(program, CFG)
        state = run_one(program, state, lambda e: isinstance(e, SilentEvent))
        assert state.bit is SwitchBit.LOCKED

    def test_no_switch_while_locked(self):
        program = na_block_program()
        state = initial_np_state(program, CFG)
        state = run_one(program, state, lambda e: isinstance(e, SilentEvent))
        switches = [
            e for e, _ in np_machine_steps(program, state, CFG) if isinstance(e, SwitchEvent)
        ]
        assert switches == []

    def test_at_step_unlocks(self):
        program = na_block_program()
        state = initial_np_state(program, CFG)
        # two na stores, then the print (AT) unlocks
        state = run_one(program, state, lambda e: isinstance(e, SilentEvent))
        state = run_one(program, state, lambda e: isinstance(e, SilentEvent))
        assert state.bit is SwitchBit.LOCKED
        state = run_one(program, state, lambda e: isinstance(e, OutputEvent))
        assert state.bit is SwitchBit.FREE

    def test_thread_exit_releases_bit(self):
        """The final return is NA-classified but must not wedge the machine
        (see the note in nonpreemptive.py)."""
        program = straightline_program([[Skip()], [Skip()]])
        state = initial_np_state(program, CFG)
        # run t1 to completion: skip (NA), return (NA)
        state = run_one(program, state, lambda e: isinstance(e, SilentEvent))
        state = run_one(program, state, lambda e: isinstance(e, SilentEvent))
        assert state.pool[0].local.done
        assert state.bit is SwitchBit.FREE
        switches = [
            e for e, _ in np_machine_steps(program, state, CFG) if isinstance(e, SwitchEvent)
        ]
        assert switches == [SwitchEvent(1)]


def _promise_successors(program, state, config):
    """Successor states where the current thread's promise set grew —
    machine steps hide the thread event, so detect promises by effect."""
    before = len(state.current_thread.promises.items)
    return [
        succ
        for event, succ in np_machine_steps(program, state, config)
        if not isinstance(event, SwitchEvent)
        and len(succ.pool[state.cur].promises.items) > before
    ]


class TestPromiseDiscipline:
    def test_no_promises_inside_na_block(self):
        config = SemanticsConfig(promise_oracle=SyntacticPromises(budget=2, max_outstanding=2))
        program = na_block_program()
        state = initial_np_state(program, config)
        # Before the block: promises allowed (bit is ◦).
        assert _promise_successors(program, state, config)
        # After one na store the bit is locked: no promise steps offered.
        state = run_one(program, state, lambda e: isinstance(e, SilentEvent))
        assert state.bit is SwitchBit.LOCKED
        assert _promise_successors(program, state, config) == []
