"""Fence semantics tests (paper footnote 1; rel/acq fences, approximate SC).

The canonical fence litmus shape: relaxed message passing becomes
synchronizing when a release fence precedes the flag write and an acquire
fence follows the flag read."""


from repro.lang.builder import ProgramBuilder
from repro.semantics.exploration import behaviors
from repro.semantics.thread import SemanticsConfig


def fenced_mp(rel_fence: bool, acq_fence: bool):
    pb = ProgramBuilder(atomics={"flag"})
    with pb.function("writer") as f:
        b = f.block("entry")
        b.store("data", 1, "na")
        if rel_fence:
            b.fence("rel")
        b.store("flag", 1, "rlx")
        b.ret()
    with pb.function("reader") as f:
        b = f.block("entry")
        b.load("r1", "flag", "rlx")
        b.be("r1", "sync", "end")
        sync = f.block("sync")
        if acq_fence:
            sync.fence("acq")
        sync.load("r2", "data", "na")
        sync.print_("r2")
        sync.jmp("end")
        f.block("end").ret()
    pb.thread("writer").thread("reader")
    return pb.build()


def outputs(program):
    result = behaviors(program, SemanticsConfig())
    assert result.exhaustive
    return result.outputs()


def test_no_fences_allows_stale_read():
    assert (0,) in outputs(fenced_mp(False, False))


def test_release_fence_alone_insufficient():
    """Without the acquire fence the reader never promotes the buffered
    view — stale reads remain possible."""
    assert (0,) in outputs(fenced_mp(True, False))


def test_acquire_fence_alone_insufficient():
    """Without the release fence the flag message carries no view."""
    assert (0,) in outputs(fenced_mp(False, True))


def test_rel_acq_fence_pair_synchronizes():
    outs = outputs(fenced_mp(True, True))
    assert (0,) not in outs
    assert (1,) in outs


def test_sc_fences_also_synchronize():
    """SC fences subsume release/acquire behavior (in our model they are
    implemented as rel+acq; PS2.1's SC fences are strictly stronger)."""
    pb = ProgramBuilder(atomics={"flag"})
    with pb.function("writer") as f:
        b = f.block("entry")
        b.store("data", 1, "na")
        b.fence("sc")
        b.store("flag", 1, "rlx")
        b.ret()
    with pb.function("reader") as f:
        b = f.block("entry")
        b.load("r1", "flag", "rlx")
        b.be("r1", "sync", "end")
        sync = f.block("sync")
        sync.fence("sc")
        sync.load("r2", "data", "na")
        sync.print_("r2")
        sync.jmp("end")
        f.block("end").ret()
    pb.thread("writer").thread("reader")
    outs = outputs(pb.build())
    assert (0,) not in outs
    assert (1,) in outs
