"""Promise certification tests (paper Sec. 3, ``consistent``)."""


from repro.lang.builder import ProgramBuilder, straightline_program
from repro.lang.syntax import AccessMode, Const, Reg, Store
from repro.lang.values import Int32
from repro.memory.memory import Memory
from repro.memory.message import Message
from repro.memory.timestamps import ts
from repro.semantics.certification import CertificationStats, consistent
from repro.semantics.thread import SemanticsConfig
from repro.semantics.threadstate import initial_thread_state

CFG = SemanticsConfig()


def with_promise(program, func, loc, value, frm, to, mem):
    """Thread state of ``func`` holding one outstanding promise."""
    state = initial_thread_state(program, func)
    promise = Message(loc, Int32(value), ts(frm), ts(to))
    mem = mem.add(promise)
    return state.replace(promises=Memory((promise,))), mem


def test_no_promises_always_consistent():
    program = straightline_program([[Store("x", Const(1), AccessMode.NA)]])
    state = initial_thread_state(program, "t1")
    mem = Memory.initial(["x"])
    assert consistent(program, state, mem, CFG)


def test_fulfillable_promise_is_consistent():
    program = straightline_program([[Store("x", Const(1), AccessMode.NA)]])
    mem = Memory.initial(["x"])
    state, mem = with_promise(program, "t1", "x", 1, 0, 1, mem)
    assert consistent(program, state, mem, CFG)


def test_promise_with_no_matching_write_is_inconsistent():
    program = straightline_program([[Store("x", Const(2), AccessMode.NA)]])
    mem = Memory.initial(["x"])
    state, mem = with_promise(program, "t1", "x", 1, 0, 1, mem)
    assert not consistent(program, state, mem, CFG)


def test_promise_on_untouched_location_is_inconsistent():
    program = straightline_program([[Store("x", Const(1), AccessMode.NA)]])
    mem = Memory.initial(["x", "y"])
    state, mem = with_promise(program, "t1", "y", 1, 0, 1, mem)
    assert not consistent(program, state, mem, CFG)


def test_conditional_promise_depends_on_readable_values():
    """The thread promises x := 1 behind `if (r == 1)`; in isolation the
    read of y can only return 0, so the branch is never taken — the OOTA
    protection."""
    pb = ProgramBuilder(atomics={"y"})
    f = pb.function("t1")
    entry = f.block("entry")
    entry.load("r", "y", "rlx")
    entry.be(Reg("r"), "hit", "end")
    hit = f.block("hit")
    hit.store("x", 1, "na")
    hit.jmp("end")
    f.block("end").ret()
    pb.thread("t1")
    program = pb.build()

    mem = Memory.initial(["x", "y"])
    state, mem1 = with_promise(program, "t1", "x", 1, 0, 1, mem)
    assert not consistent(program, state, mem1, CFG)

    # But once y = 1 is in memory, certification can read it and fulfill.
    mem2 = mem.add(Message("y", Int32(1), ts(0), ts(1)))
    state2, mem2 = with_promise(program, "t1", "x", 1, 0, 1, mem2)
    assert consistent(program, state2, mem2, CFG)


def test_certification_uses_capped_memory_for_cas():
    """A promise whose certification relies on winning a CAS against the
    *current* memory must fail against the capped memory — the paper's
    motivation for the cap (two competing CAS)."""
    pb = ProgramBuilder(atomics={"x"})
    f = pb.function("t1")
    b = f.block("entry")
    b.cas("r", "x", 0, 1, "rlx", "rlx")
    b.be(Reg("r"), "hit", "end")
    hit = f.block("hit")
    hit.store("z", 7, "na")
    hit.jmp("end")
    f.block("end").ret()
    pb.thread("t1")
    program = pb.build()

    mem = Memory.initial(["x", "z"])
    state, mem = with_promise(program, "t1", "z", 7, 0, 1, mem)
    # Against the raw memory the CAS (0 -> 1) would succeed and certify the
    # promise; against the capped memory the adjacent interval is reserved,
    # the CAS cannot succeed, and certification must fail.
    assert not consistent(program, state, mem, CFG)


def test_cache_hits_recorded():
    program = straightline_program([[Store("x", Const(1), AccessMode.NA)]])
    mem = Memory.initial(["x"])
    state, mem = with_promise(program, "t1", "x", 1, 0, 1, mem)
    cache: dict = {}
    stats = CertificationStats()
    assert consistent(program, state, mem, CFG, cache, stats)
    assert consistent(program, state, mem, CFG, cache, stats)
    assert stats.calls == 2
    assert stats.cache_hits == 1


def test_budget_exhaustion_is_conservative():
    program = straightline_program([[Store("x", Const(1), AccessMode.NA)]])
    mem = Memory.initial(["x"])
    state, mem = with_promise(program, "t1", "x", 1, 0, 1, mem)
    tiny = SemanticsConfig(certification_max_steps=0)
    stats = CertificationStats()
    assert not consistent(program, state, mem, tiny, None, stats)
    assert stats.budget_exhausted == 1


def test_trivial_calls_counted_separately():
    program = straightline_program([[Store("x", Const(1), AccessMode.NA)]])
    state = initial_thread_state(program, "t1")
    mem = Memory.initial(["x"])
    stats = CertificationStats()
    assert consistent(program, state, mem, CFG, {}, stats)
    assert stats.trivial == 1
    assert stats.cache_misses == 0


def test_cache_bounded_by_cap():
    program = straightline_program([[Store("x", Const(1), AccessMode.NA)]])
    capped = SemanticsConfig(certification_cache_cap=1)
    cache: dict = {}
    stats = CertificationStats()
    for value in (1, 2, 3):
        mem = Memory.initial(["x"])
        state, mem = with_promise(program, "t1", "x", value, 0, 1, mem)
        consistent(program, state, mem, capped, cache, stats)
    assert len(cache) == 1
    assert stats.cache_entries == 1
    assert stats.cache_evictions == 2


def test_eviction_is_fifo_and_only_costs_hits():
    program = straightline_program([[Store("x", Const(1), AccessMode.NA)]])
    capped = SemanticsConfig(certification_cache_cap=2)
    cache: dict = {}
    stats = CertificationStats()
    keys = []
    for value in (1, 2, 3):
        mem = Memory.initial(["x"])
        state, mem = with_promise(program, "t1", "x", value, 0, 1, mem)
        keys.append((state, mem))
        consistent(program, state, mem, capped, cache, stats)
    assert keys[0] not in cache       # oldest evicted
    assert keys[1] in cache and keys[2] in cache
    # An evicted entry recomputes correctly on re-query.
    assert consistent(program, *keys[0], capped, cache, stats)


def test_zero_cap_means_unbounded():
    program = straightline_program([[Store("x", Const(1), AccessMode.NA)]])
    unbounded = SemanticsConfig(certification_cache_cap=0)
    cache: dict = {}
    for value in (1, 2, 3):
        mem = Memory.initial(["x"])
        state, mem = with_promise(program, "t1", "x", value, 0, 1, mem)
        consistent(program, state, mem, unbounded, cache)
    assert len(cache) == 3
