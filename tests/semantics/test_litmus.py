"""Litmus-test behavior checks (paper Sec. 2.1 and 3) — the annotated
outcomes the paper uses to motivate PS2.1.

These tests pin down the exact *complete-execution output sets* of the
classic litmus programs under the exhaustive interpreter.
"""


from repro.litmus.library import (
    cas_exclusivity,
    corr,
    lb,
    lb_oota,
    mp_relacq,
    mp_rlx,
    sb,
)
from repro.semantics.exploration import behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig


def outputs(program, config=None):
    result = behaviors(program, config)
    assert result.exhaustive, "exploration must be exhaustive for a verdict"
    return sorted(result.outputs())


class TestStoreBuffering:
    def test_all_four_outcomes_allowed(self):
        assert outputs(sb()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_weak_outcome_without_promises(self):
        """(0,0) needs no promises in PS — just reading the initial values."""
        assert (0, 0) in outputs(sb(), SemanticsConfig())


class TestLoadBuffering:
    def test_lb_annotated_outcome_requires_promises(self):
        without = outputs(lb())
        assert (1, 1) not in without
        with_promises = outputs(
            lb(), SemanticsConfig(promise_oracle=SyntacticPromises(budget=1))
        )
        assert with_promises == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_oota_forbidden(self):
        """y := r1 cannot be promised: certification in isolation reads
        x = 0, so the promise y := 1 is never fulfillable."""
        config = SemanticsConfig(promise_oracle=SyntacticPromises(budget=1))
        assert outputs(lb_oota(), config) == [(0, 0)]


class TestMessagePassing:
    def test_relacq_forbids_stale_payload(self):
        outs = outputs(mp_relacq())
        assert (0,) not in outs
        assert (1,) in outs

    def test_rlx_allows_stale_payload(self):
        outs = outputs(mp_rlx())
        assert (0,) in outs
        assert (1,) in outs


class TestCoherence:
    def test_read_read_coherence(self):
        """Per-location timestamp order: after reading 2 written later than
        1 (in some execution order), a thread may not read back an older
        message it has already passed.  Concretely: every pair of reads is
        ordered consistently with *some* linear order of the writes — but
        both write orders are possible, so the only forbidden outcomes are
        none here; what coherence forbids is re-reading older after newer
        for a *fixed* placement.  We check a sharper derived fact: the
        outcome multiset never contains a pair that contradicts both
        placements, i.e. (1, 2) and (2, 1) are both possible but reading
        (1, 0) after... — instead we check reads never go backwards within
        one execution against the init message: (v, 0) with v != 0 is
        forbidden."""
        outs = outputs(corr())
        for r1, r2 in outs:
            if r1 != 0:
                assert r2 != 0, f"coherence violation: read {r1} then init 0"


class TestCasExclusivity:
    def test_two_cas_cannot_both_succeed(self):
        outs = outputs(cas_exclusivity())
        assert (1, 1) not in outs
        assert (0, 1) in outs
        assert (1, 0) in outs

    def test_at_least_one_succeeds(self):
        """With only two threads and no other writers, one CAS always finds
        x = 0 first."""
        outs = outputs(cas_exclusivity())
        assert (0, 0) not in outs
