"""Sanity property: programs whose threads share no locations behave
identically under PS2.1 and SC — weak-memory effects require sharing.

This exercises the whole PS machinery (placements, views, promises) and
asserts it introduces no observable difference where none can exist."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.builder import ProgramBuilder, binop
from repro.lang.syntax import Program
from repro.semantics.exploration import behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.sc import sc_behaviors
from repro.semantics.thread import SemanticsConfig


def private_program(seed: int, threads: int = 2, instrs: int = 4) -> Program:
    """Each thread reads/writes only its own locations."""
    rng = random.Random(seed)
    pb = ProgramBuilder()
    for tid in range(threads):
        f = pb.function(f"t{tid}")
        b = f.block("entry")
        locs = [f"l{tid}_{k}" for k in range(2)]
        regs = [f"r{tid}_{k}" for k in range(2)]
        for _ in range(instrs):
            choice = rng.random()
            if choice < 0.4:
                b.store(rng.choice(locs), rng.randrange(4), "na")
            elif choice < 0.8:
                b.load(rng.choice(regs), rng.choice(locs), "na")
            else:
                b.assign(rng.choice(regs), binop("+", rng.choice(regs), 1))
        b.print_(rng.choice(regs))
        b.ret()
        pb.thread(f"t{tid}")
    return pb.build()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_private_programs_are_sc(seed):
    program = private_program(seed)
    ps = behaviors(program)
    sc = sc_behaviors(program)
    assert ps.exhaustive and sc.exhaustive
    assert ps.traces == sc.traces


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_private_programs_sc_even_with_promises(seed):
    """Promises cannot manufacture observable differences without sharing."""
    program = private_program(seed, instrs=3)
    config = SemanticsConfig(promise_oracle=SyntacticPromises(budget=1, max_outstanding=1))
    ps = behaviors(program, config)
    sc = sc_behaviors(program)
    assert ps.traces == sc.traces
