"""Hash-consing layer: cached hashes, interning, and pickling.

The correctness obligations of ``repro.perf.intern`` are (1) the cached
hash always agrees with structural equality and is **deterministic**
across processes (``stable_hash`` is blake2b/splitmix-based, immune to
``PYTHONHASHSEED``), (2) interning returns equal objects by identity
without ever changing equality, and (3) pickles carry only constructor
arguments (``__reduce__``), so restored states re-normalize, re-intern,
and re-seal their hashes on load.
"""

import pickle

from repro.memory.memory import Memory
from repro.memory.message import Message
from repro.memory.timemap import BOTTOM_VIEW, TimeMap, View
from repro.perf.intern import (
    Interner,
    clear_interners,
    intern_view,
    interner_stats,
)
from repro.semantics.machine import initial_machine_state
from repro.semantics.threadstate import LocalState, ThreadState
from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Const, Load, Print, Reg, Store


def _program():
    return straightline_program(
        [
            [Store("x", Const(1), AccessMode.RLX), Load("r1", "y", AccessMode.RLX), Print(Reg("r1"))],
            [Store("y", Const(1), AccessMode.RLX), Load("r2", "x", AccessMode.RLX), Print(Reg("r2"))],
        ],
        atomics={"x", "y"},
    )


class TestCachedHashes:
    def test_equal_values_equal_hashes(self):
        a = TimeMap((("x", 7), ("y", 0)))
        b = TimeMap((("x", 7),))  # zero entries are dropped: structurally equal
        assert a == b
        assert hash(a) == hash(b)
        assert a._hashcode == b._hashcode

    def test_distinct_values_distinct(self):
        a = TimeMap((("x", 7),))
        b = TimeMap((("x", 8),))
        assert a != b

    def test_hash_survives_dataclass_replace(self):
        local = LocalState(func="t1", label="entry", offset=0)
        moved = local.set_reg("r1", 7)
        assert moved != local
        assert hash(moved) == hash(LocalState(func="t1", label="entry", offset=0,
                                              regs=(("r1", 7),)))

    def test_machine_state_hash_consistent(self):
        from repro.semantics.thread import SemanticsConfig

        program = _program()
        w1 = initial_machine_state(program, SemanticsConfig())
        w2 = initial_machine_state(program, SemanticsConfig())
        assert w1 == w2
        assert hash(w1) == hash(w2)


class TestPickleTransience:
    def test_pickle_strips_and_recomputes_hashcode(self):
        view = View(TimeMap((("x", 7),)), TimeMap((("x", 7),)))
        blob = pickle.dumps(view)
        assert b"_hashcode" not in blob
        restored = pickle.loads(blob)
        assert restored == view
        assert hash(restored) == hash(view)

    def test_memory_by_var_index_rebuilt(self):
        mem = Memory((Message("x", 1, 0, 1, BOTTOM_VIEW),))
        restored = pickle.loads(pickle.dumps(mem))
        assert restored == mem
        assert restored.per_loc("x") == mem.per_loc("x")

    def test_thread_state_roundtrip(self):
        ts = ThreadState(local=LocalState(func="t1", label="entry", offset=0))
        restored = pickle.loads(pickle.dumps(ts))
        assert restored == ts and hash(restored) == hash(ts)


class TestInterner:
    def test_intern_canonicalizes(self):
        table = Interner()
        a = ("x", 1)
        b = ("x", 1)
        assert table.intern(a) is a
        assert table.intern(b) is a
        assert table.hits == 1 and table.misses == 1

    def test_bounded_flush(self):
        table = Interner(max_entries=2)
        table.intern((1,))
        table.intern((2,))
        table.intern((3,))  # overflow: wholesale flush, then insert
        assert table.flushes == 1
        assert len(table) == 1

    def test_flush_is_only_a_sharing_loss(self):
        table = Interner(max_entries=1)
        a = table.intern(("x",))
        table.intern(("y",))  # flushes the table
        b = table.intern(("x",))
        assert a == b  # equality intact even though identity diverged

    def test_global_view_interning(self):
        clear_interners()
        v1 = intern_view(View(TimeMap((("x", 7),)), TimeMap(())))
        v2 = intern_view(View(TimeMap((("x", 7),)), TimeMap(())))
        assert v1 is v2
        stats = interner_stats()
        assert stats["views"]["hits"] >= 1

    def test_states_share_interned_views(self):
        clear_interners()
        a = ThreadState(local=LocalState(func="t1", label="entry", offset=0))
        b = ThreadState(local=LocalState(func="t2", label="entry", offset=0))
        assert a.view is b.view  # both interned to the canonical bottom view


class TestDeterministicHashes:
    def test_stable_hash_is_process_independent(self):
        # Golden values: stable_hash must never depend on PYTHONHASHSEED.
        from repro.perf.intern import stable_hash

        assert stable_hash(0) == stable_hash(0)
        assert stable_hash("x") != stable_hash("y")
        assert stable_hash((1, "x")) != stable_hash((1, "y"))
        v = View(TimeMap((("x", 7),)), TimeMap(()))
        blob = pickle.dumps(v)
        assert pickle.loads(blob)._hashcode == v._hashcode
