"""The parallel sweep scheduler: determinism, budgets, fault isolation.

The headline property (ISSUE acceptance): a sweep's report is a pure
function of its jobs — serial and ``jobs_n=4`` runs produce identical
per-program verdicts and behavior-set digests.  Hypothesis drives that
over randomly generated ww-race-free programs.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.perf.cache import behavior_digest
from repro.perf.pool import SweepJob, SweepOutcome, run_sweep
from repro.robust.budget import Budget
from repro.robust.confidence import Confidence
from repro.semantics.exploration import behaviors
from repro.semantics.thread import SemanticsConfig

GEN = GeneratorConfig(threads=2, instrs_per_thread=3)


def _square(x):
    return x * x


def _boom():
    raise RuntimeError("worker exploded")


def _sleepy(budget=None):
    # Budget-aware job: trips cooperatively against the remaining deadline.
    meter = budget.start()
    for _ in range(10_000):
        time.sleep(0.01)
        meter.tick()
    return "never"


def _explore_digest(seed):
    """Verdict + digest for one generated program (module-level so the
    fork pool can pickle the call by reference)."""
    program = random_wwrf_program(seed, GEN)
    bset = behaviors(program, SemanticsConfig())
    return {
        "digest": behavior_digest(bset),
        "exhaustive": bset.exhaustive,
        "outcomes": sorted(bset.outputs()),
    }


class TestSweepBasics:
    def test_serial_runs_in_order(self):
        result = run_sweep([SweepJob(f"j{i}", _square, (i,)) for i in (3, 1, 2)])
        assert [o.name for o in result.outcomes] == ["j1", "j2", "j3"]
        assert [o.value for o in result.outcomes] == [1, 4, 9]
        assert result.ok and result.jobs == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([SweepJob("a", _square, (1,)), SweepJob("a", _square, (2,))])

    def test_failure_is_isolated(self):
        result = run_sweep(
            [SweepJob("good", _square, (2,)), SweepJob("bad", _boom)]
        )
        assert not result.ok
        assert [o.name for o in result.failures] == ["bad"]
        assert "worker exploded" in result.failures[0].error
        good = [o for o in result.outcomes if o.ok]
        assert good[0].value == 4

    def test_parallel_failure_is_isolated(self):
        result = run_sweep(
            [SweepJob("good", _square, (2,)), SweepJob("bad", _boom)], jobs_n=2
        )
        assert [o.name for o in result.failures] == ["bad"]

    def test_confidence_folds_weakest(self):
        class Verdict:
            def __init__(self, confidence):
                self.confidence = confidence

        outcomes = (
            SweepOutcome("a", True, Verdict(Confidence.PROVED)),
            SweepOutcome("b", True, Verdict(Confidence.BOUNDED)),
        )
        from repro.perf.pool import SweepResult

        assert SweepResult(outcomes).confidence() is Confidence.BOUNDED

    def test_confidence_none_without_verdicts(self):
        result = run_sweep([SweepJob("a", _square, (1,))])
        assert result.confidence() is None


class TestSweepBudget:
    def test_deadline_bounds_whole_sweep(self):
        started = time.monotonic()
        result = run_sweep(
            [SweepJob("a", _sleepy), SweepJob("b", _sleepy)],
            budget=Budget(deadline_seconds=0.3),
        )
        elapsed = time.monotonic() - started
        assert not result.ok
        assert all("deadline" in o.error for o in result.failures)
        # Two jobs sharing one 0.3s deadline: the sweep, not each job,
        # is bounded (generous ceiling for slow CI).
        assert elapsed < 5.0

    def test_job_after_deadline_fails_fast(self):
        result = run_sweep(
            [SweepJob("a", _sleepy), SweepJob("b", _sleepy)],
            budget=Budget(deadline_seconds=0.15),
        )
        late = [o for o in result.outcomes if "before the job started" in (o.error or "")]
        # The first job eats the deadline; the second must not even start.
        assert len(late) >= 1


class TestWorkerDeath:
    """ISSUE satellite: a SIGKILLed worker must cost exactly one job —
    surfaced as ``stop_reason="worker_crashed"`` — never hang the sweep."""

    def test_killed_worker_surfaces_crash_and_sweep_completes(self):
        from repro.robust.chaos import FaultRule, chaos_rules

        jobs = [SweepJob(f"j{i}", _square, (i,)) for i in range(6)]
        # The fork pool inherits the injector: exactly one worker dies
        # (SIGKILL, no cleanup) at the moment it picks up job "j2".
        with chaos_rules(FaultRule("pool.worker", kind="kill", key="j2")):
            result = run_sweep(jobs, jobs_n=2)
        assert len(result.outcomes) == 6
        assert result.worker_crashes == 1
        (crashed,) = result.failures
        assert crashed.name == "j2"
        assert crashed.stop_reason == "worker_crashed"
        assert "died mid-job" in crashed.error
        survivors = {o.name: o.value for o in result.outcomes if o.ok}
        assert survivors == {f"j{i}": i * i for i in range(6) if i != 2}

    def test_every_worker_murdered_still_terminates(self):
        from repro.robust.chaos import FaultRule, chaos_rules

        jobs = [SweepJob(f"j{i}", _square, (i,)) for i in range(4)]
        # Every job is poison: each dispatch kills its worker.  The sweep
        # must respawn (bounded), attribute every job, and terminate.
        with chaos_rules(FaultRule("pool.worker", kind="kill", count=None)):
            result = run_sweep(jobs, jobs_n=2)
        assert len(result.outcomes) == 4
        assert all(o.stop_reason == "worker_crashed" for o in result.outcomes)
        assert result.worker_crashes >= 1

    def test_no_zombies_left_behind(self):
        import multiprocessing

        from repro.robust.chaos import FaultRule, chaos_rules

        jobs = [SweepJob(f"j{i}", _square, (i,)) for i in range(4)]
        with chaos_rules(FaultRule("pool.worker", kind="kill", key="j1")):
            run_sweep(jobs, jobs_n=2)
        # Every worker (including the murdered one) has been joined.
        assert multiprocessing.active_children() == []


class TestSerialParallelDeterminism:
    @settings(max_examples=6, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=60), min_size=1,
                    max_size=3, unique=True))
    def test_identical_verdicts_and_digests(self, seeds):
        jobs = [SweepJob(f"seed-{s:04d}", _explore_digest, (s,)) for s in seeds]
        serial = run_sweep(jobs, jobs_n=1)
        parallel = run_sweep(jobs, jobs_n=4)
        assert [o.name for o in serial.outcomes] == [o.name for o in parallel.outcomes]
        for left, right in zip(serial.outcomes, parallel.outcomes):
            assert left.ok and right.ok
            assert left.value == right.value  # digest, verdict, outcomes

    def test_fuzz_report_identical_across_jobs(self):
        from repro.fuzz import fuzz_optimizer
        from repro.opt.constprop import ConstProp

        serial = fuzz_optimizer(ConstProp(), range(4), GEN)
        parallel = fuzz_optimizer(ConstProp(), range(4), GEN, jobs=4)
        assert serial.failures == parallel.failures
        assert (serial.transformed, serial.skipped_truncated, serial.confidence) == (
            parallel.transformed, parallel.skipped_truncated, parallel.confidence
        )

    def test_corpus_identical_across_jobs(self):
        from repro.opt.dce import DCE
        from repro.sim.validate import validate_corpus

        serial = validate_corpus(DCE(), range(4), GEN)
        parallel = validate_corpus(DCE(), range(4), GEN, jobs=4)
        assert serial == parallel
