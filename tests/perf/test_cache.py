"""The persistent result cache: round-trips, invalidation, integrity.

The warm-cache round-trip (PR 3's ISSUE satellite): run a sweep with
``--cache``, mutate exactly one program, re-run, and exactly that program
re-explores.  Corrupt entries are quarantined and recomputed (the
fault-tolerant-service ISSUE satellite) — the verdict is never served,
the evidence moves to ``root/quarantine/``, and the sweep survives;
entries written under a different :data:`SEMANTICS_VERSION` are silent
misses.  A writer SIGKILLed mid-publish must leave the previous entry
readable (write-temp + ``os.replace`` atomicity).
"""

import glob
import json
import multiprocessing
import os
import signal

from repro.litmus.spec import run_spec_file
from repro.perf import cache as cache_mod
from repro.perf.cache import (
    ResultCache,
    behavior_digest,
    cache_key,
    config_digest,
)
from repro.semantics.exploration import behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig

SPEC = """//! exists ({value})
atomics x;
fn t1 {{
entry:
    x.rlx := {value};
    r := x.rlx;
    print(r);
    return;
}}
threads t1;
"""


def _write_specs(tmp_path, values):
    paths = []
    for i, value in enumerate(values):
        path = tmp_path / f"prog{i}.litmus"
        path.write_text(SPEC.format(value=value))
        paths.append(str(path))
    return paths


class TestKeying:
    def test_key_depends_on_program_text(self):
        config = SemanticsConfig()
        assert cache_key("a", config, "litmus") != cache_key("b", config, "litmus")

    def test_key_depends_on_kind(self):
        config = SemanticsConfig()
        assert cache_key("a", config, "litmus") != cache_key("a", config, "races:x")

    def test_config_digest_tracks_semantics_knobs(self):
        base = SemanticsConfig()
        assert config_digest(base) != config_digest(
            SemanticsConfig(promise_oracle=SyntacticPromises(budget=1, max_outstanding=1))
        )
        assert config_digest(base) != config_digest(SemanticsConfig(max_outputs=4))

    def test_budget_excluded_from_digest(self):
        from repro.robust.budget import Budget

        assert config_digest(SemanticsConfig()) == config_digest(
            SemanticsConfig(budget=Budget(deadline_seconds=1.0))
        )


class TestStoreAndLookup:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = SemanticsConfig()
        assert cache.lookup("prog", config, "k") is None
        assert cache.store("prog", config, "k", {"ok": True}, exhaustive=True)
        assert cache.lookup("prog", config, "k") == {"ok": True}
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_non_exhaustive_results_refused(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = SemanticsConfig()
        assert not cache.store("prog", config, "k", {"ok": True}, exhaustive=False)
        assert cache.lookup("prog", config, "k") is None

    def test_version_mismatch_is_silent_miss(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        config = SemanticsConfig()
        cache.store("prog", config, "k", {"ok": True}, exhaustive=True)
        # A semantics-code bump changes the key, so the old entry is
        # simply not found — stale verdicts can never be trusted.
        monkeypatch.setattr(cache_mod, "SEMANTICS_VERSION", "ps21-repro-999")
        fresh = ResultCache(str(tmp_path))
        assert fresh.lookup("prog", config, "k") is None

    def test_corrupt_json_is_quarantined_and_recomputed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = SemanticsConfig()
        cache.store("prog", config, "k", {"ok": True}, exhaustive=True)
        (entry,) = glob.glob(os.path.join(str(tmp_path), "??", "*.json"))
        with open(entry, "w") as handle:
            handle.write("{not json")
        # The corrupt verdict is never served: the lookup misses (the
        # caller recomputes), the evidence moves to quarantine/, and the
        # event is counted — one flipped bit no longer kills a sweep.
        assert cache.lookup("prog", config, "k") is None
        assert cache.quarantined == 1
        assert not os.path.exists(entry)
        assert os.path.exists(
            os.path.join(str(tmp_path), "quarantine", os.path.basename(entry))
        )
        # Recompute-and-store heals the entry.
        cache.store("prog", config, "k", {"ok": True}, exhaustive=True)
        assert cache.lookup("prog", config, "k") == {"ok": True}

    def test_tampered_payload_is_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = SemanticsConfig()
        cache.store("prog", config, "k", {"ok": True}, exhaustive=True)
        (entry,) = glob.glob(os.path.join(str(tmp_path), "??", "*.json"))
        with open(entry) as handle:
            blob = json.load(handle)
        blob["payload"]["ok"] = False  # flip the verdict, keep the digest
        with open(entry, "w") as handle:
            json.dump(blob, handle)
        assert cache.lookup("prog", config, "k") is None
        assert cache.quarantined == 1
        assert not os.path.exists(entry)

    def test_truncated_entry_is_quarantined(self, tmp_path):
        from repro.robust.chaos import truncate_file

        cache = ResultCache(str(tmp_path))
        config = SemanticsConfig()
        cache.store("prog", config, "k", {"ok": True}, exhaustive=True)
        (entry,) = glob.glob(os.path.join(str(tmp_path), "??", "*.json"))
        truncate_file(entry, fraction=0.5)
        assert cache.lookup("prog", config, "k") is None
        assert cache.quarantined == 1


def _store_then_die(root: str, payload_value: int) -> None:
    """Child task: publish an entry but get SIGKILLed at the replace point
    (the ``store.put`` chaos fault point) — a mid-write crash."""
    from repro.robust.chaos import FaultRule, chaos_rules

    cache = ResultCache(root)
    with chaos_rules(FaultRule("store.put", kind="kill")):
        cache.store("prog", SemanticsConfig(), "k", {"v": payload_value},
                    exhaustive=True)


class TestAtomicPublish:
    """ISSUE satellite: a SIGKILL mid-write can never publish a torn entry."""

    def test_sigkill_mid_write_leaves_old_entry_readable(self, tmp_path):
        root = str(tmp_path)
        config = SemanticsConfig()
        cache = ResultCache(root)
        cache.store("prog", config, "k", {"v": 1}, exhaustive=True)

        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_store_then_die, args=(root, 2))
        child.start()
        child.join()
        assert child.exitcode == -signal.SIGKILL

        # The kill landed after the temp write, before the publish: the
        # old entry must still be served, intact, with nothing quarantined.
        fresh = ResultCache(root)
        assert fresh.lookup("prog", config, "k") == {"v": 1}
        assert fresh.quarantined == 0

    def test_killed_writers_stale_temp_is_swept(self, tmp_path):
        root = str(tmp_path)
        config = SemanticsConfig()
        ResultCache(root).store("prog", config, "k", {"v": 1}, exhaustive=True)
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_store_then_die, args=(root, 2))
        child.start()
        child.join()
        assert glob.glob(os.path.join(root, "??", "*.tmp.*"))
        # Any eviction pass sweeps the orphaned temp file.
        store = ResultCache(root).store_backend
        store.max_entries = 100
        store.evict()
        assert not glob.glob(os.path.join(root, "??", "*.tmp.*"))


class TestWarmRoundTrip:
    def test_mutating_one_program_reexplores_exactly_it(self, tmp_path):
        paths = _write_specs(tmp_path, [1, 2, 3])
        root = str(tmp_path / "cache")

        cold = ResultCache(root)
        for path in paths:
            assert run_spec_file(path, cache=cold).ok
        assert cold.stores == 3 and cold.hits == 0

        warm = ResultCache(root)
        for path in paths:
            assert run_spec_file(path, cache=warm).ok
        assert warm.hits == 3 and warm.misses == 0

        # Mutate exactly one program; only it may re-explore.
        with open(paths[1], "w") as handle:
            handle.write(SPEC.format(value=7))
        third = ResultCache(root)
        for path in paths:
            assert run_spec_file(path, cache=third).ok
        assert third.hits == 2 and third.misses == 1 and third.stores == 1

    def test_cached_verdict_matches_fresh(self, tmp_path):
        (path,) = _write_specs(tmp_path, [5])
        cache = ResultCache(str(tmp_path / "cache"))
        fresh = run_spec_file(path, cache=cache)
        cached = run_spec_file(path, cache=cache)
        assert cached == fresh
        assert cache.hits == 1


class TestBehaviorDigest:
    def test_digest_is_deterministic_and_discriminating(self):
        from repro.litmus.library import lb

        # Promises enable LB's (1, 1) outcome, so the two behavior sets of
        # the *same* program genuinely differ — and so must their digests.
        plain = behavior_digest(behaviors(lb(), SemanticsConfig()))
        again = behavior_digest(behaviors(lb(), SemanticsConfig()))
        assert plain == again
        promising = SemanticsConfig(
            promise_oracle=SyntacticPromises(budget=1, max_outstanding=1)
        )
        assert behavior_digest(behaviors(lb(), promising)) != plain


class TestSemanticsVersionBump:
    """The source-set/wakeup-tree DPOR rework bumped
    :data:`SEMANTICS_VERSION` to ``ps21-repro-3``: entries from earlier
    eras must be silent misses — never served, never mistaken for
    corruption."""

    def test_version_reflects_the_rework(self):
        assert cache_mod.SEMANTICS_VERSION == "ps21-repro-3"

    def test_old_version_entries_are_misses_not_corruption(self, tmp_path, monkeypatch):
        config = SemanticsConfig()
        monkeypatch.setattr(cache_mod, "SEMANTICS_VERSION", "ps21-repro-1")
        old = ResultCache(str(tmp_path))
        old.store("prog", config, "k", {"ok": True}, exhaustive=True)
        monkeypatch.undo()
        fresh = ResultCache(str(tmp_path))
        assert fresh.lookup("prog", config, "k") is None
        # A version miss is not a corruption event: nothing quarantined,
        # and storing under the new version works alongside the old entry.
        assert fresh.quarantined == 0
        assert fresh.store("prog", config, "k", {"ok": 2}, exhaustive=True)
        assert fresh.lookup("prog", config, "k") == {"ok": 2}

    def test_config_digest_tracks_por_mode(self):
        digests = {config_digest(SemanticsConfig(por=por))
                   for por in ("none", "fusion", "dpor")}
        assert len(digests) == 3

    def test_config_digest_tracks_por_conservative(self):
        precise = config_digest(SemanticsConfig(por="dpor"))
        conservative = config_digest(
            SemanticsConfig(por="dpor", por_conservative=True)
        )
        assert precise != conservative
