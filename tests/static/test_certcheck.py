"""Tests for the view-bound certification pre-check.

Two obligations: the :class:`FulfillMap` answers point queries correctly
(unit tests), and — the load-bearing one — enabling the pre-check never
changes any observable behavior, it only skips certification searches
that would have failed anyway (equivalence property over generated
programs with promises enabled).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.builder import ProgramBuilder
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.semantics.exploration import Explorer
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig
from repro.semantics.threadstate import LocalState
from repro.static.certcheck import build_fulfill_map

SMALL = GeneratorConfig(threads=2, instrs_per_thread=4, prints_per_thread=1)


def _mp_program():
    """t1 writes x then releases a flag; t2 reads under an acquire guard."""
    pb = ProgramBuilder(atomics={"f"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("x", 1, "na")
        b.store("f", 1, "rel")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "f", "acq")
        b.be("r", "yes", "no")
        y = f.block("yes")
        y.load("s", "x", "na")
        y.ret()
        n = f.block("no")
        n.ret()
    pb.thread("t1").thread("t2")
    return pb.build()


# ---------------------------------------------------------------------------
# FulfillMap point queries
# ---------------------------------------------------------------------------


def test_fulfillable_shrinks_along_execution():
    program = _mp_program()
    fmap = build_fulfill_map(program)
    # Before the na store of x, x is still fulfillable; after it (and
    # before the rel store, which never fulfills) nothing is.
    assert fmap.fulfillable_at("t1", "entry", 0) == frozenset({"x"})
    assert fmap.fulfillable_at("t1", "entry", 1) == frozenset()
    assert fmap.fulfillable_at("t1", "entry", 2) == frozenset()


def test_fulfillable_covers_stack_frames():
    pb = ProgramBuilder()
    with pb.function("helper") as f:
        b = f.block("entry")
        b.skip()
        b.ret()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.call("helper", "after")
        a = f.block("after")
        a.store("x", 1, "na")
        a.ret()
    pb.thread("t1")
    program = pb.build()
    fmap = build_fulfill_map(program)
    # A thread parked inside `helper` (empty local footprint) still owes
    # the caller's post-return store via the recorded frame.
    inside = LocalState(
        func="helper", label="entry", offset=1, regs=(),
        stack=(("t1", "after"),), done=False,
    )
    assert "x" in fmap.fulfillable(inside)
    # A finished thread with no frames can fulfill nothing.
    finished = LocalState(
        func="t1", label="after", offset=1, regs=(), stack=(), done=True
    )
    assert fmap.fulfillable(finished) == frozenset()


def test_queries_are_memoized():
    program = _mp_program()
    fmap = build_fulfill_map(program)
    first = fmap.fulfillable_at("t2", "yes", 0)
    assert fmap._memo[("t2", "yes", 0)] == first
    assert fmap.fulfillable_at("t2", "yes", 0) is first


# ---------------------------------------------------------------------------
# Equivalence: the pre-check never changes behaviors
# ---------------------------------------------------------------------------


def _behaviors(program, precheck):
    config = SemanticsConfig(
        promise_oracle=SyntacticPromises(budget=1, max_outstanding=1),
        certification_precheck=precheck,
    )
    explorer = Explorer(program, config)
    return explorer.behaviors(), explorer


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=15, deadline=None)
def test_precheck_preserves_behaviors(seed):
    program = random_wwrf_program(seed, SMALL)
    with_precheck, _ = _behaviors(program, True)
    without_precheck, _ = _behaviors(program, False)
    assert with_precheck.traces == without_precheck.traces
    assert with_precheck.state_count == without_precheck.state_count


def test_precheck_skips_are_observable():
    """A promise on a location the promising thread never stores again
    is refuted statically: the skip counter must tick, and the verdict
    (no such behavior survives) is unchanged."""
    pb = ProgramBuilder(atomics={"f"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("f", 1, "rlx")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "f", "rlx")
        b.print_("r")
        b.ret()
    pb.thread("t1").thread("t2")
    program = pb.build()
    with_precheck, explorer = _behaviors(program, True)
    without_precheck, baseline = _behaviors(program, False)
    assert with_precheck.traces == without_precheck.traces
    assert explorer.cert_stats.precheck_skips > 0
    assert baseline.cert_stats.precheck_skips == 0
    # Skipped searches are exactly searches not run: the with-precheck
    # explorer performs fewer actual certification DFSes.
    assert explorer.cert_stats.cache_misses <= baseline.cert_stats.cache_misses


def test_precheck_disabled_when_promises_off():
    explorer = Explorer(_mp_program(), SemanticsConfig())
    assert explorer.cert_precheck is None
