"""Merge-shaped crossing machinery: the mode side-condition helpers, the
structural merge explainer (:func:`repro.static.crossing.explain_merges`),
and the effective-source substitution that keeps the R1/W2 segment rules
from misfiring when an absorbed *atomic* event disappears."""

from repro.lang.builder import ProgramBuilder
from repro.lang.syntax import (
    AccessMode,
    Assign,
    BasicBlock,
    Const,
    Fence,
    FenceKind,
    Load,
    Reg,
    Return,
    Skip,
    Store,
)
from repro.static.crossing import (
    CrossingProfile,
    check_crossing,
    explain_merges,
    fence_absorbs,
    merged_effective_block,
    read_mode_absorbs,
    write_mode_absorbed,
)

MERGE = CrossingProfile(invariant="merge", may_merge_accesses=True)

NA, RLX, ACQ, REL = AccessMode.NA, AccessMode.RLX, AccessMode.ACQ, AccessMode.REL


def _block(*instrs):
    return BasicBlock(tuple(instrs), Return())


class TestModeSideConditions:
    def test_read_absorption_matrix(self):
        """``o' ⊑ o``: the kept (first) read must be at least as strong."""
        order = [NA, RLX, ACQ]
        for i, first in enumerate(order):
            for j, second in enumerate(order):
                assert read_mode_absorbs(first, second) == (j <= i), (first, second)

    def test_write_absorption_matrix(self):
        """``o ⊑ o'``: the surviving (second) write must be at least as
        strong as the dropped one."""
        order = [NA, RLX, REL]
        for i, first in enumerate(order):
            for j, second in enumerate(order):
                assert write_mode_absorbed(first, second) == (i <= j), (first, second)

    def test_fence_absorption(self):
        sc, rel, acq = FenceKind.SC, FenceKind.REL, FenceKind.ACQ
        assert fence_absorbs(rel, rel)
        assert fence_absorbs(acq, acq)
        assert fence_absorbs(sc, rel)
        assert fence_absorbs(sc, acq)
        assert fence_absorbs(sc, sc)
        # rel / acq are incomparable — neither absorbs the other.
        assert not fence_absorbs(rel, acq)
        assert not fence_absorbs(acq, rel)
        assert not fence_absorbs(rel, sc)
        assert not fence_absorbs(acq, sc)


class TestExplainMerges:
    def test_rar_same_register(self):
        src = _block(Load("r", "x", RLX), Load("r", "x", RLX))
        tgt = _block(Load("r", "x", RLX), Skip())
        assert explain_merges(src, tgt) == {1: "rar"}

    def test_rar_register_move(self):
        src = _block(Load("r1", "x", RLX), Load("r2", "x", RLX))
        tgt = _block(Load("r1", "x", RLX), Assign("r2", Reg("r1")))
        assert explain_merges(src, tgt) == {1: "rar"}

    def test_rar_refuses_stronger_second_read(self):
        """An acquire is never simulated by a relaxed read."""
        src = _block(Load("r1", "x", RLX), Load("r2", "x", ACQ))
        tgt = _block(Load("r1", "x", RLX), Assign("r2", Reg("r1")))
        assert explain_merges(src, tgt) == {}

    def test_rar_chains_through_forwarded_load(self):
        """The middle read was itself rewritten to a move — its register
        still holds the location's value, so the third read chains."""
        src = _block(
            Load("r1", "x", RLX), Load("r2", "x", RLX), Load("r3", "x", RLX)
        )
        tgt = _block(
            Load("r1", "x", RLX),
            Assign("r2", Reg("r1")),
            Assign("r3", Reg("r2")),
        )
        assert explain_merges(src, tgt) == {1: "rar", 2: "rar"}

    def test_forwarding(self):
        src = _block(Store("x", Const(1), RLX), Load("r", "x", RLX))
        tgt = _block(Store("x", Const(1), RLX), Assign("r", Const(1)))
        assert explain_merges(src, tgt) == {1: "forward"}

    def test_forwarding_refuses_acquire_read(self):
        src = _block(Store("x", Const(1), RLX), Load("r", "x", ACQ))
        tgt = _block(Store("x", Const(1), RLX), Assign("r", Const(1)))
        assert explain_merges(src, tgt) == {}

    def test_waw(self):
        src = _block(Store("a", Const(1), NA), Store("a", Const(2), NA))
        tgt = _block(Skip(), Store("a", Const(2), NA))
        assert explain_merges(src, tgt) == {0: "waw"}

    def test_waw_chain(self):
        src = _block(
            Store("a", Const(1), NA),
            Store("a", Const(2), NA),
            Store("a", Const(3), NA),
        )
        tgt = _block(Skip(), Skip(), Store("a", Const(3), NA))
        assert explain_merges(src, tgt) == {0: "waw", 1: "waw"}

    def test_waw_refuses_weaker_survivor(self):
        src = _block(Store("x", Const(1), REL), Store("x", Const(2), RLX))
        tgt = _block(Skip(), Store("x", Const(2), RLX))
        assert explain_merges(src, tgt) == {}

    def test_waw_refuses_nonadjacent_drop(self):
        """The dropped store's neighbor is a *different* location — there
        is no adjacent-pair lemma to invoke."""
        src = _block(
            Store("a", Const(1), NA),
            Store("b", Const(9), NA),
            Store("a", Const(2), NA),
        )
        tgt = _block(Skip(), Store("b", Const(9), NA), Store("a", Const(2), NA))
        assert explain_merges(src, tgt) == {}

    def test_fence_backward_and_forward(self):
        src = _block(Fence(FenceKind.REL), Fence(FenceKind.REL))
        assert explain_merges(src, _block(Skip(), Fence(FenceKind.REL))) == {
            0: "fence"
        }
        assert explain_merges(src, _block(Fence(FenceKind.REL), Skip())) == {
            1: "fence"
        }

    def test_fence_refuses_incomparable_pair(self):
        src = _block(Fence(FenceKind.REL), Fence(FenceKind.ACQ))
        assert explain_merges(src, _block(Skip(), Fence(FenceKind.ACQ))) == {}
        assert explain_merges(src, _block(Fence(FenceKind.REL), Skip())) == {}

    def test_length_mismatch_explains_nothing(self):
        src = _block(Load("r", "x", RLX), Load("r", "x", RLX))
        tgt = _block(Load("r", "x", RLX))
        assert explain_merges(src, tgt) == {}

    def test_effective_block_substitutes_explained_offsets(self):
        src = _block(Store("a", Const(1), NA), Store("a", Const(2), NA))
        tgt = _block(Skip(), Store("a", Const(2), NA))
        assert merged_effective_block(src, tgt) == tgt


def _pair(build_src, build_tgt, atomics={"x"}):
    programs = []
    for build in (build_src, build_tgt):
        pb = ProgramBuilder(atomics=set(atomics))
        with pb.function("t1") as f:
            build(f)
        pb.thread("t1")
        programs.append(pb.build())
    return programs


class TestCheckCrossingWithMerges:
    def test_atomic_rar_merge_is_clean_under_profile(self):
        """Absorbing the second relaxed read deletes an atomic event; the
        effective-source substitution must keep the segment rules (W2)
        from comparing misaligned atomic segments."""

        def src(f):
            b = f.block("entry")
            b.load("r1", "x", "rlx")
            b.load("r2", "x", "rlx")
            b.store("a", 1, "na")
            b.print_("r2")
            b.ret()

        def tgt(f):
            b = f.block("entry")
            b.load("r1", "x", "rlx")
            b.assign("r2", "r1")
            b.store("a", 1, "na")
            b.print_("r2")
            b.ret()

        source, target = _pair(src, tgt)
        assert check_crossing(source, target, MERGE).ok

    def test_unexplained_atomic_deletion_is_flagged(self):
        """Dropping a release write with no adjacent absorber is a W1
        violation even under the merge profile."""

        def src(f):
            b = f.block("entry")
            b.store("a", 1, "na")
            b.store("x", 1, "rel")
            b.store("a", 2, "na")
            b.ret()

        def tgt(f):
            b = f.block("entry")
            b.skip()
            b.store("x", 1, "rel")
            b.store("a", 2, "na")
            b.ret()

        source, target = _pair(src, tgt)
        assert not check_crossing(source, target, MERGE).ok
