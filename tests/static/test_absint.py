"""Unit and property tests for the abstract-interpretation engine.

Covers the worklist solver (both directions, widening/narrowing,
dead-edge pruning), the interval domain's soundness against concrete
``eval_expr``, the constants domain's parity with ConstProp's value
analysis, and the interprocedural summary machinery.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.builder import ProgramBuilder, binop
from repro.lang.syntax import eval_expr
from repro.lang.values import Int32
from repro.static.absint import solve
from repro.static.absint.domains.constants import ConstantsDomain, possibly_nonzero
from repro.static.absint.domains.intervals import (
    INT32_MAX,
    Interval,
    IntervalEnv,
    IntervalsDomain,
    eval_interval,
    interval_const,
)
from repro.static.absint.domains.modref import FulfillDomain, modref_summaries
from repro.static.absint.interproc import (
    call_graph,
    reachable_functions,
)


def _single_function(build):
    """A one-function program from a FunctionBuilder callback."""
    pb = ProgramBuilder()
    with pb.function("f") as f:
        build(f)
    pb.thread("f")
    return pb.build()


# ---------------------------------------------------------------------------
# Forward solving: intervals
# ---------------------------------------------------------------------------


def test_straight_line_intervals():
    def build(f):
        b = f.block("entry")
        b.assign("r", 3)
        b.assign("s", binop("+", "r", 4))
        b.ret()

    program = _single_function(build)
    result = solve(program.function("f"), IntervalsDomain())
    env = result.at("entry", 2)
    assert env.get("r") == interval_const(3)
    assert env.get("s") == interval_const(7)


def test_widening_makes_counting_loop_converge():
    """``r := r + 1`` forever: the interval chain is 2^32 long, so
    convergence within the iteration budget proves widening fired."""

    def build(f):
        b = f.block("entry")
        b.jmp("loop")
        loop = f.block("loop")
        loop.assign("r", binop("+", "r", 1))
        loop.be(binop("<", "r", 1000), "loop", "exit")
        e = f.block("exit")
        e.ret()

    program = _single_function(build)
    result = solve(program.function("f"), IntervalsDomain())
    assert result.widened  # the loop head was widened
    r = result.entry["exit"].get("r")
    assert r.contains(1000)  # sound: the loop exits with r >= 1000


def test_narrowing_recovers_branch_bound():
    """After widening blows `r` to ⊤ at the loop head, the exit branch
    still bounds the exit environment via edge refinement."""

    def build(f):
        b = f.block("entry")
        b.jmp("loop")
        loop = f.block("loop")
        loop.assign("r", binop("+", "r", 1))
        loop.be(binop("<", "r", 10), "loop", "exit")
        e = f.block("exit")
        e.ret()

    program = _single_function(build)
    result = solve(program.function("f"), IntervalsDomain())
    r = result.entry["exit"].get("r")
    assert r.lo >= 10  # the else-edge of `r < 10` knows r >= 10
    assert r.hi < INT32_MAX or r == Interval(10, INT32_MAX)


def test_dead_edge_is_pruned():
    """A constant-false branch arm stays unreached (bottom)."""

    def build(f):
        b = f.block("entry")
        b.assign("r", 0)
        b.be("r", "dead", "live")
        d = f.block("dead")
        d.ret()
        v = f.block("live")
        v.ret()

    program = _single_function(build)
    result = solve(program.function("f"), IntervalsDomain())
    assert result.entry["dead"].is_unreached
    assert not result.entry["live"].is_unreached


def test_branch_refinement_on_then_edge():
    def build(f):
        b = f.block("entry")
        b.load("r", "x", "na")
        b.be(binop("<", "r", 10), "small", "big")
        s = f.block("small")
        s.ret()
        g = f.block("big")
        g.ret()

    program = _single_function(build)
    result = solve(program.function("f"), IntervalsDomain())
    assert result.entry["small"].get("r").hi == 9
    assert result.entry["big"].get("r").lo == 10


def test_degenerate_branch_refines_nothing():
    """``be c, L, L`` must not refine: both polarities flow to L."""

    def build(f):
        b = f.block("entry")
        b.assign("r", 0)
        b.be("r", "join", "join")
        j = f.block("join")
        j.ret()

    program = _single_function(build)
    result = solve(program.function("f"), IntervalsDomain())
    assert not result.entry["join"].is_unreached
    assert result.entry["join"].get("r") == interval_const(0)


# ---------------------------------------------------------------------------
# Interval soundness property
# ---------------------------------------------------------------------------

_REGS = ("r1", "r2", "r3")


def _exprs():
    leaves = st.one_of(
        st.integers(min_value=-50, max_value=50).map(
            lambda v: binop("+", v, 0)
        ),
        st.sampled_from(_REGS).map(lambda r: binop("+", r, 0)),
    )
    ops = st.sampled_from(["+", "-", "*", "==", "!=", "<", "<=", ">", ">="])
    return st.recursive(
        leaves,
        lambda sub: st.tuples(ops, sub, sub).map(lambda t: binop(t[0], t[1], t[2])),
        max_leaves=6,
    )


@given(
    expr=_exprs(),
    values=st.tuples(*(st.integers(min_value=-50, max_value=50) for _ in _REGS)),
    slack=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=200, deadline=None)
def test_eval_interval_contains_concrete_value(expr, values, slack):
    """Galois soundness: if every register's interval contains its
    concrete value, the abstract result contains the concrete result."""
    reg_map = {reg: Int32(v) for reg, v in zip(_REGS, values)}
    env = IntervalEnv.top()
    for reg, v in zip(_REGS, values):
        env = env.set(reg, Interval(v - slack, v + slack))
    concrete = int(eval_expr(expr, reg_map))
    assert eval_interval(expr, env).contains(concrete)


@given(expr=_exprs(), values=st.tuples(*(st.integers(-50, 50) for _ in _REGS)))
@settings(max_examples=100, deadline=None)
def test_possibly_nonzero_is_conservative(expr, values):
    """``possibly_nonzero(e) == False`` must imply e evaluates to 0 for
    every register valuation (the env-free fragment)."""
    if not possibly_nonzero(expr):
        reg_map = {reg: Int32(v) for reg, v in zip(_REGS, values)}
        assert int(eval_expr(expr, reg_map)) == 0


# ---------------------------------------------------------------------------
# Constants domain parity
# ---------------------------------------------------------------------------


def test_constants_domain_matches_value_analysis():
    from repro.analysis.value import value_analysis

    def build(f):
        b = f.block("entry")
        b.assign("r", 3)
        b.be("r", "t", "e")
        t = f.block("t")
        t.assign("s", 1)
        t.jmp("j")
        e = f.block("e")
        e.assign("s", 2)
        e.jmp("j")
        j = f.block("j")
        j.print_("s")
        j.ret()

    program = _single_function(build)
    via_engine = solve(program.function("f"), ConstantsDomain())
    via_api = value_analysis(program, "f")
    for label in ("entry", "t", "e", "j"):
        assert via_engine.entry[label] == via_api.entry_envs[label]
    # `s` joins #1 ⊔ #2 = ⊤ at the join block (no edge refinement).
    assert via_api.entry_envs["j"].get("s").is_top


# ---------------------------------------------------------------------------
# Backward solving: fulfill facts
# ---------------------------------------------------------------------------


def test_backward_fulfill_facts():
    pb = ProgramBuilder(atomics={"x", "b"})
    with pb.function("f") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("x", 1, "rel")
        b.store("b", 2, "rlx")
        b.ret()
    pb.thread("f")
    program = pb.build()
    summaries = modref_summaries(program, ("f",))
    result = solve(program.function("f"), FulfillDomain(summaries))
    # Before the na store both a and b lie ahead; after it only b; the
    # rel store never fulfills so it contributes nothing.
    assert result.at("entry", 0) == frozenset({"a", "b"})
    assert result.at("entry", 1) == frozenset({"b"})
    assert result.at("entry", 3) == frozenset()


def test_fulfill_facts_cross_calls():
    pb = ProgramBuilder()
    with pb.function("helper") as f:
        b = f.block("entry")
        b.store("c", 7, "na")
        b.ret()
    with pb.function("f") as f:
        b = f.block("entry")
        b.call("helper", "after")
        a = f.block("after")
        a.ret()
    pb.thread("f")
    program = pb.build()
    summaries = modref_summaries(program, ("f", "helper"))
    result = solve(program.function("f"), FulfillDomain(summaries))
    # At the call point the callee's fulfill footprint is visible.
    assert result.at("entry", 0) == frozenset({"c"})
    assert result.at("after", 0) == frozenset()


# ---------------------------------------------------------------------------
# Interprocedural machinery
# ---------------------------------------------------------------------------


def _call_chain_program():
    pb = ProgramBuilder()
    with pb.function("c") as f:
        b = f.block("entry")
        b.store("z", 1, "na")
        b.ret()
    with pb.function("b") as f:
        blk = f.block("entry")
        blk.call("c", "done")
        d = f.block("done")
        d.ret()
    with pb.function("a") as f:
        blk = f.block("entry")
        blk.call("b", "done")
        d = f.block("done")
        d.ret()
    with pb.function("other") as f:
        b = f.block("entry")
        b.ret()
    pb.thread("a")
    return pb.build()


def test_call_graph_and_reachability():
    program = _call_chain_program()
    graph = call_graph(program)
    assert set(graph["a"]) == {"b"}
    assert set(graph["b"]) == {"c"}
    assert reachable_functions(program, "a") == ("a", "b", "c")
    assert "other" not in reachable_functions(program, "a")


def test_modref_summaries_are_transitive():
    program = _call_chain_program()
    summaries = modref_summaries(program, ("a", "b", "c"))
    assert summaries["a"].writes == frozenset({"z"})
    assert summaries["a"].fulfills == frozenset({"z"})


def test_modref_summaries_tolerate_recursion():
    pb = ProgramBuilder()
    with pb.function("f") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.be("r", "again", "done")
        again = f.block("again")
        again.call("f", "done")
        d = f.block("done")
        d.ret()
    pb.thread("f")
    program = pb.build()
    summaries = modref_summaries(program, ("f",))
    assert summaries["f"].writes == frozenset({"a"})


def test_constants_domain_replay_offsets():
    def build(f):
        b = f.block("entry")
        b.assign("r", 1)
        b.assign("r", binop("+", "r", 1))
        b.assign("r", binop("*", "r", 3))
        b.ret()

    program = _single_function(build)
    result = solve(program.function("f"), ConstantsDomain())
    facts = result.before_instructions("entry")
    assert facts[1].get("r").value == 1
    assert facts[2].get("r").value == 2
    assert result.at("entry", 3).get("r").value == 6
