"""Soundness of the static rw tier: RACE_FREE must imply no exhaustive
rw-race.

Mirror of :mod:`tests.static.test_soundness` for the read-write rung of
the three-tier ladder — a static ``RACE_FREE`` short-circuits the rw
census in :func:`repro.races.rw_races_tiered`, so a counterexample here
would make the ladder report a racy program race-free.  Two corpora:
the default generator (reads may cross threads: many seeds are genuinely
racy, exercising the detector's negative path too) and the
``owned_reads_only`` discipline (rw-race-free by construction, so the
static tier should usually discharge — and must never be contradicted).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.builder import ProgramBuilder
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.races.rwrace import rw_races
from repro.static import StaticVerdict, analyze_rw_races

SMALL = GeneratorConfig(threads=2, instrs_per_thread=4, prints_per_thread=1)
OWNED = GeneratorConfig(
    threads=2, instrs_per_thread=4, prints_per_thread=1, owned_reads_only=True
)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_static_race_free_implies_no_exhaustive_rw_race(seed):
    program = random_wwrf_program(seed, SMALL)
    static = analyze_rw_races(program)
    if static.race_free:
        witnesses = rw_races(program)
        assert witnesses == (), (
            f"static RACE_FREE contradicts exhaustive rw_races on seed {seed}"
        )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_static_race_free_sound_on_owned_corpus(seed):
    program = random_wwrf_program(seed, OWNED)
    static = analyze_rw_races(program)
    if static.race_free:
        assert rw_races(program) == (), (
            f"static RACE_FREE contradicts exhaustive rw_races on owned seed {seed}"
        )


@given(seed=st.integers(min_value=0, max_value=2_000))
@settings(max_examples=10, deadline=None)
def test_static_rw_verdict_is_deterministic(seed):
    program = random_wwrf_program(seed, SMALL)
    assert analyze_rw_races(program) == analyze_rw_races(program)


def test_rightly_inconclusive_on_dead_write():
    """t1's write of `a` sits behind a constant-false branch, so t2's
    read never races.  The value-insensitive static analysis must stay
    conservative (POTENTIAL_RACE), never RACE_FREE by accident — and
    never claim a race exists as a *proof* either."""
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.assign("r", 0)
        b.be("r", "write", "skip")
        w = f.block("write")
        w.store("a", 1, "na")
        w.ret()
        s = f.block("skip")
        s.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "a", "na")
        b.ret()
    pb.thread("t1").thread("t2")
    program = pb.build()
    assert rw_races(program) == ()  # ground truth: the write never fires
    assert analyze_rw_races(program).verdict is StaticVerdict.POTENTIAL_RACE


def test_detects_genuine_rw_race_seed():
    """At least one default-corpus shape is genuinely rw-racy and the
    static analysis flags it (no silent RACE_FREE on racy programs)."""
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "a", "na")
        b.print_("r")
        b.ret()
    pb.thread("t1").thread("t2")
    program = pb.build()
    assert rw_races(program) != ()
    assert not analyze_rw_races(program).race_free
