"""Strict optimizer output gate tests (`Optimizer.run(strict=...)`)."""

import pytest

from repro.lang.syntax import CodeHeap
from repro.litmus.library import LITMUS_SUITE
from repro.opt import CSE, DCE, ConstProp, CopyProp, Cleanup, LICM, compose
from repro.opt.base import strict_optimizer
from repro.opt.unsound import NaiveDCE, RedundantWriteIntroduction
from repro.static import StrictModeViolation, check_optimizer_output


@pytest.fixture
def fig15():
    return LITMUS_SUITE["Fig15-src"].program


def test_strict_rejects_write_introduction(fig15):
    opt = strict_optimizer(RedundantWriteIntroduction())
    with pytest.raises(StrictModeViolation, match="introduced-write"):
        opt.run(fig15)


def test_strict_rejects_naive_dce(fig15):
    with pytest.raises(StrictModeViolation, match="release-crossing"):
        NaiveDCE().run(fig15, strict=True)


def test_nonstrict_lets_unsound_output_through(fig15):
    """Without the gate the unsound pass silently produces its output —
    strictness is opt-in."""
    target = RedundantWriteIntroduction().run(fig15)
    assert target != fig15


def test_sound_passes_survive_strict():
    pipeline = compose(compose(ConstProp(), CSE()), compose(CopyProp(), DCE()))
    for test in LITMUS_SUITE.values():
        for opt in (DCE(), CSE(), ConstProp(), CopyProp(), Cleanup(), LICM(), pipeline):
            strict_optimizer(opt).run(test.program)  # must not raise


def test_class_attribute_enables_strict(fig15):
    class StrictRWI(RedundantWriteIntroduction):
        strict = True

    with pytest.raises(StrictModeViolation):
        StrictRWI().run(fig15)


def _clone_with(program, **overrides):
    """A field-for-field copy bypassing ``__post_init__`` validation, so the
    contract checks (not the constructors) are what reject the mutation."""
    clone = object.__new__(type(program))
    for field in ("functions", "atomics", "threads"):
        object.__setattr__(clone, field, overrides.get(field, getattr(program, field)))
    return clone


def test_gate_rejects_changed_atomics(fig15):
    target = _clone_with(fig15, atomics=frozenset())
    with pytest.raises(StrictModeViolation, match="atomics"):
        check_optimizer_output("x", fig15, target)


def test_gate_rejects_changed_threads(fig15):
    target = _clone_with(fig15, threads=fig15.threads[:1])
    with pytest.raises(StrictModeViolation, match="thread list"):
        check_optimizer_output("x", fig15, target)


def test_gate_rejects_dropped_function(fig15):
    target = _clone_with(fig15, functions=fig15.functions[:1])
    with pytest.raises(StrictModeViolation, match="declared functions"):
        check_optimizer_output("x", fig15, target)


def test_gate_rejects_malformed_output(fig15):
    heap = fig15.functions[0][1]
    bad_heap = object.__new__(CodeHeap)
    object.__setattr__(bad_heap, "blocks", heap.blocks[:0])
    object.__setattr__(bad_heap, "entry", heap.entry)
    functions = ((fig15.functions[0][0], bad_heap),) + fig15.functions[1:]
    target = _clone_with(fig15, functions=functions)
    with pytest.raises(StrictModeViolation, match="fails lint"):
        check_optimizer_output("x", fig15, target)


def test_strict_wrapper_name(fig15):
    opt = strict_optimizer(DCE())
    assert opt.name == "strict(dce)"
    assert opt.run(fig15) == DCE().run(fig15)
