"""Crossing-legality checker tests (paper Sec. 7 discipline)."""

from repro.lang.builder import ProgramBuilder
from repro.litmus.library import LITMUS_SUITE
from repro.opt import CSE, DCE, ConstProp, CopyProp
from repro.opt.unsound import NaiveDCE, RedundantWriteIntroduction
from repro.static import check_crossing


def _two_block_program(build_t1):
    pb = ProgramBuilder(atomics={"f"})
    with pb.function("t1") as f:
        build_t1(f)
    pb.thread("t1")
    return pb.build()


def test_identity_is_clean():
    for test in LITMUS_SUITE.values():
        report = check_crossing(test.program, test.program)
        assert report.ok and not report.inconclusive
        assert str(report) == "crossing: clean"


def test_sound_passes_are_clean_on_litmus():
    for test in LITMUS_SUITE.values():
        for opt in (DCE(), CSE(), ConstProp(), CopyProp()):
            target = opt.run(test.program)
            assert check_crossing(test.program, target).ok, (test, opt.name)


def test_naive_dce_release_crossing():
    """Fig. 15: NaiveDCE eliminates the na-write before a release store —
    the exact unsoundness the crossing matrix forbids."""
    source = LITMUS_SUITE["Fig15-src"].program
    target = NaiveDCE().run(source)
    report = check_crossing(source, target)
    assert not report.ok
    assert any(v.rule == "release-crossing" for v in report.violations)


def test_write_introduction_flagged():
    source = LITMUS_SUITE["Fig15-src"].program
    target = RedundantWriteIntroduction().run(source)
    report = check_crossing(source, target)
    assert not report.ok
    assert any(v.rule == "introduced-write" for v in report.violations)


def test_read_hoisted_above_acquire():
    """A na-read moved from after an acquire load to before it."""

    def src(f):
        b = f.block("entry")
        b.load("g", "f", "acq")
        b.load("r", "a", "na")
        b.print_("r")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.load("r", "a", "na")
        b.load("g", "f", "acq")
        b.print_("r")
        b.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert not report.ok
    assert [v.rule for v in report.violations] == ["acquire-crossing"]
    assert report.violations[0].loc == "a"


def test_read_sunk_past_acquire_is_legal():
    """The roach-motel direction (read moved *after* an acquire) is fine."""

    def src(f):
        b = f.block("entry")
        b.load("r", "a", "na")
        b.load("g", "f", "acq")
        b.print_("r")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.load("g", "f", "acq")
        b.load("r", "a", "na")
        b.print_("r")
        b.ret()

    assert check_crossing(_two_block_program(src), _two_block_program(tgt)).ok


def test_introduced_read_flagged():
    def src(f):
        b = f.block("entry")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.load("r", "a", "na")
        b.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert [v.rule for v in report.violations] == ["introduced-read"]


def test_local_write_elimination_is_legal():
    """Eliminating a dead na-write with no release after it is fine."""

    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("a", 2, "na")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.store("a", 2, "na")
        b.ret()

    assert check_crossing(_two_block_program(src), _two_block_program(tgt)).ok


def test_write_elimination_before_release_flagged():
    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("f", 1, "rel")
        b.store("a", 2, "na")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.store("f", 1, "rel")
        b.store("a", 2, "na")
        b.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert any(v.rule == "release-crossing" for v in report.violations)


def test_restructured_cfg_is_inconclusive():
    """Blocks present on only one side are reported, not violated."""

    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.jmp("body")
        body = f.block("body")
        body.store("a", 1, "na")
        body.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert report.ok
    assert "t1:body" in report.inconclusive
    assert "inconclusive" in str(report)


def test_missing_function_is_inconclusive():
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        f.block("entry").ret()
    pb.thread("t1")
    one = pb.build()

    pb = ProgramBuilder()
    with pb.function("t1") as f:
        f.block("entry").ret()
    with pb.function("extra") as f:
        f.block("entry").ret()
    pb.thread("t1")
    two = pb.build()

    report = check_crossing(one, two)
    assert report.ok
    assert "extra:<function>" in report.inconclusive
