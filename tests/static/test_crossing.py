"""Crossing-legality checker tests (paper Sec. 7 discipline)."""

from repro.lang.builder import ProgramBuilder
from repro.litmus.library import LITMUS_SUITE
from repro.opt import CSE, DCE, ConstProp, CopyProp
from repro.opt.base import compose
from repro.opt.unroll import Peel
from repro.opt.unsound import NaiveDCE, RedundantWriteIntroduction
from repro.static import CrossingProfile, check_crossing, match_blocks


def _two_block_program(build_t1):
    pb = ProgramBuilder(atomics={"f"})
    with pb.function("t1") as f:
        build_t1(f)
    pb.thread("t1")
    return pb.build()


def test_identity_is_clean():
    for test in LITMUS_SUITE.values():
        report = check_crossing(test.program, test.program)
        assert report.ok and not report.inconclusive
        assert str(report) == "crossing: clean"


def test_sound_passes_are_clean_on_litmus():
    for test in LITMUS_SUITE.values():
        for opt in (DCE(), CSE(), ConstProp(), CopyProp()):
            target = opt.run(test.program)
            assert check_crossing(test.program, target).ok, (test, opt.name)


def test_naive_dce_release_crossing():
    """Fig. 15: NaiveDCE eliminates the na-write before a release store —
    the exact unsoundness the crossing matrix forbids."""
    source = LITMUS_SUITE["Fig15-src"].program
    target = NaiveDCE().run(source)
    report = check_crossing(source, target)
    assert not report.ok
    assert any(v.rule == "release-crossing" for v in report.violations)


def test_write_introduction_flagged():
    source = LITMUS_SUITE["Fig15-src"].program
    target = RedundantWriteIntroduction().run(source)
    report = check_crossing(source, target)
    assert not report.ok
    assert any(v.rule == "introduced-write" for v in report.violations)


def test_read_hoisted_above_acquire():
    """A na-read moved from after an acquire load to before it."""

    def src(f):
        b = f.block("entry")
        b.load("g", "f", "acq")
        b.load("r", "a", "na")
        b.print_("r")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.load("r", "a", "na")
        b.load("g", "f", "acq")
        b.print_("r")
        b.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert not report.ok
    assert [v.rule for v in report.violations] == ["acquire-crossing"]
    assert report.violations[0].loc == "a"


def test_read_sunk_past_acquire_is_legal():
    """The roach-motel direction (read moved *after* an acquire) is fine."""

    def src(f):
        b = f.block("entry")
        b.load("r", "a", "na")
        b.load("g", "f", "acq")
        b.print_("r")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.load("g", "f", "acq")
        b.load("r", "a", "na")
        b.print_("r")
        b.ret()

    assert check_crossing(_two_block_program(src), _two_block_program(tgt)).ok


def test_introduced_read_flagged():
    def src(f):
        b = f.block("entry")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.load("r", "a", "na")
        b.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert [v.rule for v in report.violations] == ["introduced-read"]


def test_local_write_elimination_is_legal():
    """Eliminating a dead na-write with no release after it is fine."""

    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("a", 2, "na")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.store("a", 2, "na")
        b.ret()

    assert check_crossing(_two_block_program(src), _two_block_program(tgt)).ok


def test_write_elimination_before_release_flagged():
    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("f", 1, "rel")
        b.store("a", 2, "na")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.store("f", 1, "rel")
        b.store("a", 2, "na")
        b.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert any(v.rule == "release-crossing" for v in report.violations)


def test_restructured_cfg_is_inconclusive():
    """Blocks present on only one side are reported, not violated."""

    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.jmp("body")
        body = f.block("body")
        body.store("a", 1, "na")
        body.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert report.ok
    assert "t1:body" in report.inconclusive
    assert "inconclusive" in str(report)


def test_missing_function_is_inconclusive():
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        f.block("entry").ret()
    pb.thread("t1")
    one = pb.build()

    pb = ProgramBuilder()
    with pb.function("t1") as f:
        f.block("entry").ret()
    with pb.function("extra") as f:
        f.block("entry").ret()
    pb.thread("t1")
    two = pb.build()

    report = check_crossing(one, two)
    assert report.ok
    assert "extra:<function>" in report.inconclusive


# -- sc accesses: two-sided boundaries ------------------------------------
#
# An sc fence is *both* an acquire and a release event, so it must act as
# a boundary for R1 (reads may not hoist above it) and for W1 (writes
# before it may not be eliminated).  Same for the two halves of a CAS:
# the read part with mode acq is an acquire event, the write part with
# mode rel is a release event.


def test_read_hoisted_above_sc_fence():
    def src(f):
        b = f.block("entry")
        b.fence("sc")
        b.load("r", "a", "na")
        b.print_("r")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.load("r", "a", "na")
        b.fence("sc")
        b.print_("r")
        b.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert not report.ok
    assert [v.rule for v in report.violations] == ["acquire-crossing"]
    assert report.violations[0].loc == "a"


def test_write_eliminated_before_sc_fence():
    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.fence("sc")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.fence("sc")
        b.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert not report.ok
    assert any(v.rule == "release-crossing" and v.loc == "a" for v in report.violations)


def test_read_hoisted_above_acquire_cas():
    def src(f):
        b = f.block("entry")
        b.cas("g", "f", 0, 1, "acq", "rlx")
        b.load("r", "a", "na")
        b.print_("r")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.load("r", "a", "na")
        b.cas("g", "f", 0, 1, "acq", "rlx")
        b.print_("r")
        b.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert not report.ok
    assert [v.rule for v in report.violations] == ["acquire-crossing"]


def test_write_eliminated_before_release_cas():
    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.cas("g", "f", 0, 1, "rlx", "rel")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.cas("g", "f", 0, 1, "rlx", "rel")
        b.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert not report.ok
    assert any(v.rule == "release-crossing" and v.loc == "a" for v in report.violations)


def test_relaxed_cas_is_not_a_boundary():
    """A fully relaxed CAS is neither acquire nor release: hoisting a
    na-read above it and dropping a thread-local write before it are both
    crossing-legal."""

    def src(f):
        b = f.block("entry")
        b.cas("g", "f", 0, 1, "rlx", "rlx")
        b.load("r", "a", "na")
        b.print_("r")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.load("r", "a", "na")
        b.cas("g", "f", 0, 1, "rlx", "rlx")
        b.print_("r")
        b.ret()

    report = check_crossing(_two_block_program(src), _two_block_program(tgt))
    assert report.ok and not report.inconclusive


# -- CFG block matching (restructuring passes) ----------------------------


def test_renamed_block_matched_by_fingerprint():
    """A pure label rename is matched by instruction fingerprint and
    rule-checked as an ordinary pair — clean, no inconclusive sites."""

    def src(f):
        b = f.block("entry")
        b.jmp("loop")
        c = f.block("loop")
        c.store("a", 1, "na")
        c.ret()

    def tgt(f):
        b = f.block("entry")
        b.jmp("body")
        c = f.block("body")
        c.store("a", 1, "na")
        c.ret()

    source = _two_block_program(src)
    target = _two_block_program(tgt)
    matching = match_blocks(
        source.function_map["t1"], target.function_map["t1"]
    )
    assert ("loop", "body") in matching.pairs
    assert not matching.copies and not matching.inserted
    report = check_crossing(source, target)
    assert report.ok and not report.inconclusive


def test_copied_block_clean_under_restructuring_profile():
    """A duplicated block (loop peeling shape) is inconclusive without a
    profile but clean when the pass declares ``may_restructure_cfg``."""

    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.jmp("body")
        c = f.block("body")
        c.store("a", 1, "na")
        c.ret()

    source = _two_block_program(src)
    target = _two_block_program(tgt)
    baseline = check_crossing(source, target)
    assert baseline.ok and baseline.inconclusive
    profiled = check_crossing(
        source, target, CrossingProfile(may_restructure_cfg=True)
    )
    assert profiled.ok and not profiled.inconclusive


def test_peel_copies_clean_with_profile():
    """Loop peeling duplicates event-carrying blocks; under the declared
    ``may_restructure_cfg`` profile the copies are rule-checked against
    their originals and come out clean on the whole litmus suite."""
    for test in LITMUS_SUITE.values():
        target = Peel().run(test.program)
        profile = Peel.crossing_profile
        report = check_crossing(test.program, target, profile)
        assert report.ok, (test.name, report.violations)
        assert not report.inconclusive, (test.name, report.inconclusive)


def test_benign_inserted_preheader_requires_read_license():
    """An inserted block holding a hoisted na-load (LICM preheader shape)
    is an R2 introduced-read unless the pass declares
    ``may_introduce_reads``."""

    def src(f):
        b = f.block("entry")
        b.jmp("loop")
        c = f.block("loop")
        c.load("r", "a", "na")
        c.print_("r")
        c.ret()

    def tgt(f):
        b = f.block("entry")
        b.jmp("pre")
        p = f.block("pre")
        p.load("r", "a", "na")
        p.jmp("loop")
        c = f.block("loop")
        c.load("r", "a", "na")
        c.print_("r")
        c.ret()

    source = _two_block_program(src)
    target = _two_block_program(tgt)
    baseline = check_crossing(source, target)
    assert not baseline.ok or baseline.inconclusive
    profiled = check_crossing(
        source,
        target,
        CrossingProfile(may_introduce_reads=True, may_restructure_cfg=True),
    )
    assert profiled.ok and not profiled.inconclusive


def test_lying_profile_does_not_suppress_crossing_rules():
    """A profile only *licenses* structural latitude; R1/W1 violations are
    still flagged even when the pass claims elimination rights."""
    source = LITMUS_SUITE["Fig15-src"].program
    target = NaiveDCE().run(source)
    report = check_crossing(source, target, NaiveDCE.crossing_profile)
    assert not report.ok
    assert any(v.rule == "release-crossing" for v in report.violations)


# -- crossing profiles -----------------------------------------------------


def test_profile_merge_composes_invariants_and_flags():
    id_profile = CrossingProfile(invariant="id")
    dce_profile = CrossingProfile(
        invariant="dce", may_eliminate_reads=True, may_eliminate_writes=True
    )
    merged = id_profile.merge(dce_profile)
    assert merged is not None
    assert merged.invariant == "dce"
    assert merged.may_eliminate_reads and merged.may_eliminate_writes
    assert not merged.may_reorder


def test_profile_merge_rejects_conflicting_invariants():
    dce_profile = CrossingProfile(invariant="dce")
    reorder_profile = CrossingProfile(invariant="reorder", may_reorder=True)
    assert dce_profile.merge(reorder_profile) is None


def test_composed_optimizer_profile():
    composed = compose(ConstProp(), CSE())
    profile = composed.crossing_profile
    assert profile is not None
    assert profile.invariant == "id"
    assert profile.may_eliminate_reads
