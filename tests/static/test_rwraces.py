"""Unit tests for the static read-write race analysis."""

from repro.lang.builder import ProgramBuilder, binop
from repro.static.rwraces import analyze_rw_races
from repro.static.wwraces import CALLS_REASON, UNPROTECTED_REASON, StaticVerdict


def test_owned_reads_are_race_free():
    """Each thread reads only locations it alone writes: ownership
    discharges every pair without a flag argument."""
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.load("r", "a", "na")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.store("b", 2, "na")
        b.load("r", "b", "na")
        b.ret()
    pb.thread("t1")
    pb.thread("t2")
    report = analyze_rw_races(pb.build())
    assert report.verdict is StaticVerdict.RACE_FREE
    assert report.checked_pairs == 0  # no cross-thread writer to pair with


def test_unwritten_location_read_is_race_free():
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.load("r", "a", "na")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("s", "a", "na")
        b.ret()
    pb.thread("t1")
    pb.thread("t2")
    assert analyze_rw_races(pb.build()).race_free


def test_unprotected_cross_thread_read_is_flagged():
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "a", "na")
        b.ret()
    pb.thread("t1")
    pb.thread("t2")
    report = analyze_rw_races(pb.build())
    assert report.verdict is StaticVerdict.POTENTIAL_RACE
    assert report.checked_pairs == 1
    (witness,) = report.witnesses
    assert witness.loc == "a"
    assert witness.reader_tid == 1 and witness.writer_tid == 0
    assert witness.read_site.loc == "a" and witness.write_site.loc == "a"
    assert witness.definite
    assert witness.reason == UNPROTECTED_REASON


def _mp_writer_publishes(guarded_read=True):
    """Writer stores x then releases flag; reader acquires flag and
    reads x (guarded or not)."""
    pb = ProgramBuilder(atomics={"f"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("x", 1, "na")
        b.store("f", 1, "rel")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "f", "acq")
        if guarded_read:
            b.be("r", "yes", "no")
            y = f.block("yes")
            y.load("s", "x", "na")
            y.ret()
            n = f.block("no")
            n.ret()
        else:
            b.load("s", "x", "na")
            b.ret()
    pb.thread("t1")
    pb.thread("t2")
    return pb.build()


def test_flag_protocol_writer_publishes_reader_guarded():
    report = analyze_rw_races(_mp_writer_publishes(guarded_read=True))
    assert report.verdict is StaticVerdict.RACE_FREE
    assert report.checked_pairs == 1


def test_unguarded_read_not_discharged():
    report = analyze_rw_races(_mp_writer_publishes(guarded_read=False))
    assert report.verdict is StaticVerdict.POTENTIAL_RACE


def test_flag_protocol_reader_publishes_writer_guarded():
    """The converse order: the reader finishes its x-reads, then
    publishes; the writer's x-write sits behind the acquire guard."""
    pb = ProgramBuilder(atomics={"f"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.load("r", "x", "na")
        b.store("f", 1, "rel")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "f", "acq")
        b.be("r", "yes", "no")
        y = f.block("yes")
        y.store("x", 1, "na")
        y.ret()
        n = f.block("no")
        n.ret()
    pb.thread("t1")
    pb.thread("t2")
    report = analyze_rw_races(pb.build())
    assert report.verdict is StaticVerdict.RACE_FREE


def test_read_after_publication_not_discharged():
    """The flag owner reads x *after* releasing the flag: neither order
    of the protocol applies and the pair must survive."""
    pb = ProgramBuilder(atomics={"f"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("f", 1, "rel")
        b.load("r", "x", "na")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "f", "acq")
        b.be("r", "yes", "no")
        y = f.block("yes")
        y.store("x", 1, "na")
        y.ret()
        n = f.block("no")
        n.ret()
    pb.thread("t1")
    pb.thread("t2")
    report = analyze_rw_races(pb.build())
    assert report.verdict is StaticVerdict.POTENTIAL_RACE


def test_calls_produce_unknown_not_potential_race():
    pb = ProgramBuilder()
    with pb.function("helper") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.ret()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.call("helper", "done")
        d = f.block("done")
        d.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "a", "na")
        b.ret()
    pb.thread("t1")
    pb.thread("t2")
    report = analyze_rw_races(pb.build())
    assert report.verdict is StaticVerdict.UNKNOWN
    assert all(not w.definite for w in report.witnesses)
    assert all(w.reason == CALLS_REASON for w in report.witnesses)


def test_report_str_mentions_verdict_and_sites():
    report = analyze_rw_races(_mp_writer_publishes(guarded_read=False))
    text = str(report)
    assert text.startswith("static rw-analysis: potential-race")
    assert "thread 1 reads" in text
    assert "thread 0 writes" in text


def test_own_thread_rw_is_not_a_race():
    """A thread reading its own written location is never an rw-race
    (the definition quantifies over *other* threads' messages)."""
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.load("r", "a", "na")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.assign("r", binop("+", 1, 2))
        b.ret()
    pb.thread("t1")
    pb.thread("t2")
    assert analyze_rw_races(pb.build()).race_free
