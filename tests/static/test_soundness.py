"""Soundness of the static tier: RACE_FREE must imply exhaustive ww-RF.

This is the load-bearing property of the whole tiered design — a static
``RACE_FREE`` short-circuits exploration, so a single counterexample here
would make :func:`repro.races.ww_rf_tiered` unsound.  The Hypothesis
property sweeps generator seeds (beyond the fixed 50-seed corpus the
E-STATIC benchmark replays); the explicit cases document where the
analysis is *rightly* inconclusive (path-insensitivity) without being
wrong.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.builder import ProgramBuilder
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.races.wwrf import ww_rf
from repro.static import StaticVerdict, analyze_ww_races

SMALL = GeneratorConfig(threads=2, instrs_per_thread=4, prints_per_thread=1)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_static_race_free_implies_exhaustive_race_free(seed):
    program = random_wwrf_program(seed, SMALL)
    static = analyze_ww_races(program)
    if static.race_free:
        exhaustive = ww_rf(program)
        assert exhaustive.exhaustive
        assert exhaustive.race_free, (
            f"static RACE_FREE contradicts exhaustive ww_rf on seed {seed}"
        )


@given(seed=st.integers(min_value=0, max_value=2_000))
@settings(max_examples=10, deadline=None)
def test_static_verdict_is_deterministic(seed):
    program = random_wwrf_program(seed, SMALL)
    assert analyze_ww_races(program) == analyze_ww_races(program)


def test_rightly_inconclusive_on_dead_branch():
    """Both threads write `a`, but t2's write sits behind a constant-false
    branch.  Exhaustively race-free; the value-insensitive static analysis
    must *not* say RACE_FREE here — POTENTIAL_RACE (then the tier falls
    back) is the correct conservative answer."""
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.assign("r", 0)
        b.be("r", "write", "skip")
        w = f.block("write")
        w.store("a", 2, "na")
        w.ret()
        s = f.block("skip")
        s.ret()
    pb.thread("t1").thread("t2")
    program = pb.build()
    assert ww_rf(program).race_free  # ground truth: the branch never fires
    assert analyze_ww_races(program).verdict is StaticVerdict.POTENTIAL_RACE


def test_rightly_inconclusive_on_rw_ordering():
    """t2 only writes after *reading* a nonzero `a` — impossible since t1
    writes 1 only after t2 could no longer read it... exhaustive semantics
    sorts it out; statically there is no rel/acq protection, so the
    fallback verdict is POTENTIAL_RACE."""
    pb = ProgramBuilder(atomics={"f"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("f", 1, "rlx")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "f", "rlx")
        b.be("r", "write", "done")
        w = f.block("write")
        w.store("a", 2, "na")
        w.ret()
        d = f.block("done")
        d.ret()
    pb.thread("t1").thread("t2")
    program = pb.build()
    assert analyze_ww_races(program).verdict is StaticVerdict.POTENTIAL_RACE
    assert not ww_rf(program).race_free  # and indeed the rlx flag races
