"""Soundness of tier 0: CERTIFIED must imply exhaustive refinement.

The load-bearing property of the tiered validation ladder — a static
``CERTIFIED`` short-circuits exploration, so a single counterexample here
would make :func:`repro.sim.validate.validate_tiered` unsound.  The
Hypothesis property sweeps generator seeds over both the sound gallery
and the deliberately unsound passes (whose *lying* crossing profiles are
the adversarial case: the certifier must check the claim, never trust
it)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.opt import CSE, DCE, ConstProp, CopyProp, Merge, Reorder, UnusedRead
from repro.opt.unsound import (
    NaiveDCE,
    RedundantWriteIntroduction,
    UnsoundWaWMerge,
)
from repro.sim import validate_optimizer
from repro.static.certify import certify_transformation

SMALL = GeneratorConfig(threads=2, instrs_per_thread=4, prints_per_thread=1)
REORDERABLE = GeneratorConfig(
    threads=2, instrs_per_thread=3, prints_per_thread=1, reorder_clusters=1
)
MERGEABLE = GeneratorConfig(
    threads=2,
    instrs_per_thread=3,
    prints_per_thread=1,
    merge_clusters=1,
    unused_read_sites=1,
)

SOUND = (ConstProp(), CSE(), DCE(), CopyProp(), Reorder(), Merge(), UnusedRead())
UNSOUND = (NaiveDCE(), RedundantWriteIntroduction(), UnsoundWaWMerge())


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_certified_implies_refinement(seed):
    program = random_wwrf_program(seed, SMALL)
    for opt in SOUND + UNSOUND:
        report = certify_transformation(opt, program)
        if report.certified:
            exhaustive = validate_optimizer(opt, program)
            assert exhaustive.ok, (
                f"CERTIFIED contradicts exploration: {opt.name} on seed {seed}"
            )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_certified_reorder_implies_refinement(seed):
    """Dedicated sweep with reorderable instruction clusters so the
    I_reorder permutation rule actually fires."""
    program = random_wwrf_program(seed, REORDERABLE)
    opt = Reorder()
    report = certify_transformation(opt, program)
    if report.certified:
        exhaustive = validate_optimizer(opt, program)
        assert exhaustive.ok, f"CERTIFIED reorder contradicts exploration on seed {seed}"


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_certified_merge_family_implies_refinement(seed):
    """Dedicated sweep with mergeable clusters and dead plain reads so
    the I_merge / I_unused obligation rules actually fire — including the
    lying WaW merge, which the certifier may only accept on instances
    where its adjacency claim happens to be true."""
    program = random_wwrf_program(seed, MERGEABLE)
    for opt in (Merge(), UnusedRead(), UnsoundWaWMerge()):
        report = certify_transformation(opt, program)
        if report.certified:
            exhaustive = validate_optimizer(opt, program)
            assert exhaustive.ok, (
                f"CERTIFIED contradicts exploration: {opt.name} on seed {seed}"
            )


@given(seed=st.integers(min_value=0, max_value=2_000))
@settings(max_examples=10, deadline=None)
def test_certificate_is_deterministic(seed):
    program = random_wwrf_program(seed, SMALL)
    for opt in SOUND:
        first = certify_transformation(opt, program)
        second = certify_transformation(opt, program)
        assert first.verdict == second.verdict
        assert first.reasons == second.reasons
