"""Static thread-modular ww-race analysis (tier 0) unit tests."""

from repro.lang.builder import ProgramBuilder, straightline_program
from repro.lang.syntax import AccessMode, Const, Load, Store
from repro.static import StaticVerdict, analyze_ww_races, build_thread_summary


def flag_protocol_program(flag_mode="rel", guard_mode="acq", flag_value=1):
    """t1 writes a then publishes flag; t2 writes a behind a flag guard."""
    pb = ProgramBuilder(atomics={"flag"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("flag", flag_value, flag_mode)
        b.ret()
    with pb.function("t2") as f:
        spin = f.block("spin")
        spin.load("r", "flag", guard_mode)
        spin.be("r", "write", "spin")
        w = f.block("write")
        w.store("a", 2, "na")
        w.ret()
    pb.thread("t1").thread("t2")
    return pb.build()


def test_disjoint_writers_race_free():
    program = straightline_program(
        [[Store("a", Const(1), AccessMode.NA)], [Store("b", Const(1), AccessMode.NA)]]
    )
    report = analyze_ww_races(program)
    assert report.verdict is StaticVerdict.RACE_FREE
    assert report.race_free and bool(report)
    assert not report.witnesses


def test_same_location_writes_potential_race():
    program = straightline_program(
        [[Store("a", Const(1), AccessMode.NA)], [Store("a", Const(2), AccessMode.NA)]]
    )
    report = analyze_ww_races(program)
    assert report.verdict is StaticVerdict.POTENTIAL_RACE
    assert not report.race_free
    (witness,) = report.witnesses
    assert witness.loc == "a"
    assert witness.definite
    assert (witness.tid_a, witness.tid_b) == (0, 1)
    assert witness.site_a.label == "entry" and witness.site_b.label == "entry"


def test_atomic_only_conflict_is_race_free():
    """ww-races are about non-atomic writes; atomic-location conflicts
    never reach the pairwise check."""
    program = straightline_program(
        [[Store("x", Const(1), AccessMode.RLX)], [Store("x", Const(2), AccessMode.RLX)]],
        atomics={"x"},
    )
    report = analyze_ww_races(program)
    assert report.verdict is StaticVerdict.RACE_FREE
    assert report.checked_pairs == 0


def test_flag_protocol_discharged():
    report = analyze_ww_races(flag_protocol_program())
    assert report.verdict is StaticVerdict.RACE_FREE


def test_relaxed_flag_not_discharged():
    """The same shape with a relaxed publication is genuinely racy."""
    report = analyze_ww_races(flag_protocol_program(flag_mode="rlx"))
    assert report.verdict is StaticVerdict.POTENTIAL_RACE


def test_relaxed_guard_not_discharged():
    report = analyze_ww_races(flag_protocol_program(guard_mode="rlx"))
    assert report.verdict is StaticVerdict.POTENTIAL_RACE


def test_zero_flag_store_does_not_publish():
    """Storing 0 to the flag can never satisfy the guard, so it does not
    count as a publication — but it also never *breaks* ownership."""
    pb = ProgramBuilder(atomics={"flag"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("flag", 0, "rel")  # reset, before the protected write
        b.store("a", 1, "na")
        b.store("flag", 1, "rel")
        b.ret()
    with pb.function("t2") as f:
        spin = f.block("spin")
        spin.load("r", "flag", "acq")
        spin.be("r", "write", "spin")
        w = f.block("write")
        w.store("a", 2, "na")
        w.ret()
    pb.thread("t1").thread("t2")
    assert analyze_ww_races(pb.build()).verdict is StaticVerdict.RACE_FREE


def test_cas_on_flag_defeats_protocol():
    """A CAS on the flag may publish from the wrong thread: ownership
    condition (i) fails and the pair stays suspicious."""
    pb = ProgramBuilder(atomics={"flag"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("flag", 1, "rel")
        b.ret()
    with pb.function("t2") as f:
        spin = f.block("spin")
        spin.cas("r", "flag", 0, 1, "acq", "rel")
        spin.be("r", "spin", "write")
        w = f.block("write")
        w.store("a", 2, "na")
        w.ret()
    pb.thread("t1").thread("t2")
    assert analyze_ww_races(pb.build()).verdict is StaticVerdict.POTENTIAL_RACE


def test_write_after_publish_not_discharged():
    """Condition (ii): an a-write after the publication is unprotected."""
    pb = ProgramBuilder(atomics={"flag"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("flag", 1, "rel")
        b.store("a", 1, "na")  # after the publish: t2 may already be writing
        b.ret()
    with pb.function("t2") as f:
        spin = f.block("spin")
        spin.load("r", "flag", "acq")
        spin.be("r", "write", "spin")
        w = f.block("write")
        w.store("a", 2, "na")
        w.ret()
    pb.thread("t1").thread("t2")
    assert analyze_ww_races(pb.build()).verdict is StaticVerdict.POTENTIAL_RACE


def test_unguarded_write_not_discharged():
    """Condition (iii): an a-write reachable without the guard races."""
    pb = ProgramBuilder(atomics={"flag"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("flag", 1, "rel")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "flag", "acq")
        b.store("a", 2, "na")  # unconditional — not behind the guard edge
        b.ret()
    pb.thread("t1").thread("t2")
    assert analyze_ww_races(pb.build()).verdict is StaticVerdict.POTENTIAL_RACE


def test_function_calls_give_unknown():
    """Calls defeat the protection analysis: verdict UNKNOWN, witness
    marked non-definite."""
    pb = ProgramBuilder()
    with pb.function("helper") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.ret()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.call("helper", "done")
        d = f.block("done")
        d.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.store("a", 2, "na")
        b.ret()
    pb.thread("t1").thread("t2")
    report = analyze_ww_races(pb.build())
    assert report.verdict is StaticVerdict.UNKNOWN
    (witness,) = report.witnesses
    assert not witness.definite
    assert "call" in witness.reason


def test_same_entry_function_twice_not_discharged():
    """Two threads running the same function cannot be flag-ordered."""
    pb = ProgramBuilder(atomics={"flag"})
    with pb.function("t") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("flag", 1, "rel")
        b.ret()
    pb.thread("t").thread("t")
    assert analyze_ww_races(pb.build()).verdict is StaticVerdict.POTENTIAL_RACE


def test_unreachable_writes_ignored():
    """Writes in unreachable blocks never execute and are not summarized."""
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.ret()
        dead = f.block("dead")
        dead.store("a", 1, "na")
        dead.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.store("a", 2, "na")
        b.ret()
    pb.thread("t1").thread("t2")
    report = analyze_ww_races(pb.build())
    assert report.verdict is StaticVerdict.RACE_FREE
    assert build_thread_summary(pb.build(), 0).write_locs() == frozenset()


def test_summary_write_sites():
    program = straightline_program(
        [
            [
                Store("a", Const(1), AccessMode.NA),
                Load("r", "a", AccessMode.NA),
                Store("b", Const(2), AccessMode.NA),
            ]
        ]
    )
    summary = build_thread_summary(program, 0)
    assert summary.write_locs() == {"a", "b"}
    assert [site.index for site in summary.writes] == [0, 2]
    assert not summary.has_calls
