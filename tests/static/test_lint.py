"""IR well-formedness lint tests.

The :class:`Program`/:class:`CodeHeap` constructors already reject most
malformed shapes, so the corrupted inputs here are assembled through the
same back door (``object.__setattr__`` on the frozen instances) that a
buggy optimizer or deserializer would effectively use.
"""

from repro.lang.builder import ProgramBuilder, straightline_program
from repro.lang.syntax import (
    AccessMode,
    BasicBlock,
    Const,
    Jmp,
    Load,
    Return,
    Skip,
    Store,
)
from repro.litmus.library import LITMUS_SUITE
from repro.static import lint_program


def _swap_blocks(program, func, blocks):
    """Replace ``func``'s block tuple without re-running validation."""
    heap = program.function(func)
    object.__setattr__(heap, "blocks", tuple(sorted(dict(blocks).items())))
    return program


def test_clean_program():
    program = straightline_program([[Store("a", Const(1), AccessMode.NA)]])
    report = lint_program(program)
    assert report.ok and bool(report)
    assert not report.issues
    assert str(report) == "lint: clean"


def test_litmus_suite_is_clean():
    for test in LITMUS_SUITE.values():
        assert lint_program(test.program).ok


def test_unresolved_edge():
    program = straightline_program([[Skip()]])
    _swap_blocks(program, "t1", [("entry", BasicBlock((), Jmp("nowhere")))])
    report = lint_program(program)
    assert not report.ok
    assert [i.code for i in report.errors] == ["edge-unresolved"]
    assert report.errors[0].function == "t1"


def test_missing_entry_label():
    program = straightline_program([[Skip()]])
    _swap_blocks(program, "t1", [("other", BasicBlock((), Return()))])
    report = lint_program(program)
    assert "entry-missing" in [i.code for i in report.errors]


def test_terminator_missing():
    program = straightline_program([[Skip()]])
    _swap_blocks(program, "t1", [("entry", BasicBlock((Skip(),), Skip()))])
    report = lint_program(program)
    assert [i.code for i in report.errors] == ["terminator-missing"]


def test_terminator_in_body():
    program = straightline_program([[Skip()]])
    _swap_blocks(
        program, "t1", [("entry", BasicBlock((Return(),), Return()))]
    )
    report = lint_program(program)
    assert [i.code for i in report.errors] == ["terminator-in-body"]


def test_na_access_to_atomic():
    program = straightline_program(
        [[Store("x", Const(1), AccessMode.RLX)]], atomics={"x"}
    )
    bad = BasicBlock((Store("x", Const(1), AccessMode.NA),), Return())
    _swap_blocks(program, "t1", [("entry", bad)])
    report = lint_program(program)
    assert [i.code for i in report.errors] == ["mode-atomic"]


def test_atomic_access_to_nonatomic():
    program = straightline_program([[Skip()]])
    bad = BasicBlock((Load("r", "a", AccessMode.ACQ),), Return())
    _swap_blocks(program, "t1", [("entry", bad)])
    report = lint_program(program)
    assert [i.code for i in report.errors] == ["mode-nonatomic"]


def test_thread_entry_missing():
    program = straightline_program([[Skip()]])
    object.__setattr__(program, "threads", ("t1", "ghost"))
    report = lint_program(program)
    assert [i.code for i in report.errors] == ["thread-entry"]


def test_no_threads():
    program = straightline_program([[Skip()]])
    object.__setattr__(program, "threads", ())
    report = lint_program(program)
    assert [i.code for i in report.errors] == ["no-threads"]


def test_unreachable_block_is_warning_only():
    pb = ProgramBuilder()
    with pb.function("t1") as f:
        b = f.block("entry")
        b.ret()
        dead = f.block("dead")
        dead.ret()
    pb.thread("t1")
    report = lint_program(pb.build())
    assert report.ok  # warnings do not fail the lint
    assert [i.code for i in report.warnings] == ["unreachable-block"]
    assert "warning" in str(report)


def test_multiple_issues_all_reported():
    program = straightline_program([[Skip()]])
    blocks = [
        ("entry", BasicBlock((Load("r", "a", AccessMode.ACQ),), Jmp("gone"))),
    ]
    _swap_blocks(program, "t1", blocks)
    report = lint_program(program)
    assert {i.code for i in report.errors} == {"mode-nonatomic", "edge-unresolved"}
