"""Static transformation certifier tests (tier 0 of the validation ladder).

The certifier combines the crossing oracle with the Owicki–Gries
obligation checker; ``CERTIFIED`` must only ever be issued when the
transformation is genuinely a refinement (the Hypothesis mirror in
``test_certify_soundness.py`` checks that against exhaustive
exploration — here we pin down the fixed verdicts).
"""

from dataclasses import dataclass

from repro.lang.builder import ProgramBuilder
from repro.litmus.library import LITMUS_SUITE
from repro.opt import CSE, DCE, ConstProp, CopyProp, Reorder, identity_optimizer
from repro.opt.base import Optimizer
from repro.opt.unsound import NaiveDCE, RedundantWriteIntroduction
from repro.sim import validate_optimizer
from repro.static.certify import CertVerdict, certify_transformation

GALLERY = (ConstProp(), CSE(), DCE(), CopyProp(), Reorder())


def test_identity_certifies_on_litmus():
    for test in LITMUS_SUITE.values():
        report = certify_transformation(identity_optimizer(), test.program)
        if report.certified:
            assert report.invariant == "I_id"
            assert "certified" in str(report)


def test_gallery_certifies_most_of_litmus():
    """The sound gallery should statically discharge the bulk of the
    litmus suite (Fig4 is rightly inconclusive: its source is not
    statically ww-race-free)."""
    for opt in GALLERY:
        certified = 0
        for test in LITMUS_SUITE.values():
            report = certify_transformation(opt, test.program)
            assert report.verdict in (CertVerdict.CERTIFIED, CertVerdict.INCONCLUSIVE)
            certified += report.certified
        assert certified >= len(LITMUS_SUITE) - 2, (opt.name, certified)


def test_unprofiled_pass_is_inconclusive():
    @dataclass(frozen=True)
    class Anon(Optimizer):
        name: str = "anon"

        def run_function(self, program, fname, heap):
            return heap

    report = certify_transformation(Anon(), LITMUS_SUITE["MP-relacq"].program)
    assert not report.certified
    assert any("profile" in reason for reason in report.reasons)


def test_naive_dce_is_never_certified_on_fig15():
    """Fig. 15's unsound elimination must be rejected even though
    NaiveDCE *claims* the I_dce profile — the claim is checked, not
    trusted."""
    report = certify_transformation(NaiveDCE(), LITMUS_SUITE["Fig15-src"].program)
    assert report.verdict is CertVerdict.INCONCLUSIVE
    assert report.crossing is not None and not report.crossing.ok


def test_write_introduction_is_never_certified():
    for test in LITMUS_SUITE.values():
        opt = RedundantWriteIntroduction()
        if opt.run(test.program) == test.program:
            continue
        report = certify_transformation(opt, test.program)
        assert not report.certified, test.name


def test_unsound_cse_variant_is_not_certified():
    """CSE with acquire_kills=False reuses a stale load across an acquire;
    the certifier must refuse (either crossing R1 or an undischarged OG
    obligation), and exploration agrees the result is not a refinement."""
    pb = ProgramBuilder(atomics={"f"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.load("r1", "a", "na")
        b.load("g", "f", "acq")
        b.load("r2", "a", "na")
        b.print_("r2")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("f", 1, "rel")
        b.ret()
    pb.thread("t1")
    pb.thread("t2")
    source = pb.build()

    bad = CSE(acquire_kills=False)
    assert bad.run(source) != source
    report = certify_transformation(bad, source)
    assert not report.certified


def test_certificate_report_is_checkable():
    """A CERTIFIED report carries the full witness: profile invariant,
    crossing report, and the discharged OG obligations."""
    source = LITMUS_SUITE["Fig16-src"].program
    report = certify_transformation(DCE(), source)
    assert report.certified
    assert report.invariant == "I_dce"
    assert report.crossing is not None and report.crossing.ok
    assert report.og is not None and report.og.ok
    assert all(ob.discharged for ob in report.og.obligations)


def test_certified_matches_exploration_on_litmus():
    """Behavior-set ground truth: every CERTIFIED verdict over the litmus
    suite is confirmed by exhaustive refinement checking."""
    for opt in GALLERY:
        for test in LITMUS_SUITE.values():
            report = certify_transformation(opt, test.program)
            if report.certified:
                exhaustive = validate_optimizer(opt, test.program)
                assert exhaustive.ok, (opt.name, test.name)


def test_precomputed_target_is_honoured():
    source = LITMUS_SUITE["Fig16-src"].program
    target = DCE().run(source)
    report = certify_transformation(DCE(), source, target)
    assert report.certified == certify_transformation(DCE(), source).certified
