"""Regression tests for the hardened guard and nonzero reasoning.

The flag-protocol analysis must recognize nested and negated guard
shapes (``(r != 0) != 0``, ``r == 0``, ``0 == r``) and — crucially —
fall back *conservatively* on everything it cannot prove: an
unrecognized guard or an undecidable store value may only make the
analysis less precise, never unsound.
"""

from repro.lang.builder import ProgramBuilder, binop
from repro.lang.syntax import Const, Reg
from repro.static.absint.domains.constants import possibly_nonzero
from repro.static.protocol import acquire_guard_edges, guard_condition
from repro.static.wwraces import StaticVerdict, analyze_ww_races
from repro.analysis.value import Env
from repro.analysis.lattice import flat_const


# ---------------------------------------------------------------------------
# guard_condition
# ---------------------------------------------------------------------------


def test_bare_register_guard():
    assert guard_condition(Reg("r")) == ("r", True)


def test_nonzero_comparison_guards():
    assert guard_condition(binop("!=", "r", 0)) == ("r", True)
    assert guard_condition(binop("==", "r", 0)) == ("r", False)
    # Flipped operand order must be recognized too.
    assert guard_condition(binop("!=", 0, "r")) == ("r", True)
    assert guard_condition(binop("==", 0, "r")) == ("r", False)


def test_nested_guard_towers():
    # (r != 0) != 0 ≡ r != 0: polarity survives the wrapper.
    assert guard_condition(binop("!=", binop("!=", "r", 0), 0)) == ("r", True)
    # (r == 0) == 0 ≡ r != 0: two negations cancel.
    assert guard_condition(binop("==", binop("==", "r", 0), 0)) == ("r", True)
    # (r != 0) == 0 ≡ r == 0.
    assert guard_condition(binop("==", binop("!=", "r", 0), 0)) == ("r", False)
    # Three deep, mixed operand order.
    cond = binop("==", 0, binop("!=", binop("==", "r", 0), 0))
    assert guard_condition(cond) == ("r", True)


def test_unrecognized_guards_return_none():
    # Comparison against a nonzero constant says nothing about r != 0.
    assert guard_condition(binop("!=", "r", 1)) is None
    assert guard_condition(binop("==", "r", 2)) is None
    # Arithmetic is not a pure nonzero test.
    assert guard_condition(binop("+", "r", 1)) is None
    # Multi-register conditions are out of scope.
    assert guard_condition(binop("==", "r1", "r2")) is None
    # A constant condition names no register.
    assert guard_condition(Const(1)) is None
    # A wrapper around an unrecognized inner stays unrecognized.
    assert guard_condition(binop("!=", binop("+", "r", 1), 0)) is None


# ---------------------------------------------------------------------------
# possibly_nonzero
# ---------------------------------------------------------------------------


def test_possibly_nonzero_structural_zeros():
    assert not possibly_nonzero(Const(0))
    assert not possibly_nonzero(binop("+", 0, 0))
    assert not possibly_nonzero(binop("*", "r", 0))
    assert not possibly_nonzero(binop("*", 0, binop("+", "r", 5)))


def test_possibly_nonzero_conservative_on_unknowns():
    assert possibly_nonzero(Reg("r"))
    assert possibly_nonzero(binop("+", "r", 0))
    # r - r is always 0 but the interval evaluation cannot correlate the
    # two occurrences: the conservative answer is "maybe nonzero".
    assert possibly_nonzero(binop("-", "r", "r"))
    assert possibly_nonzero(Const(1))


def test_possibly_nonzero_with_environment():
    env = Env.initial().set("r", flat_const(0))
    assert not possibly_nonzero(Reg("r"), env)
    assert not possibly_nonzero(binop("+", "r", 0), env)
    assert possibly_nonzero(binop("+", "r", 1), env)
    # An unreached point never publishes anything.
    assert not possibly_nonzero(Reg("r"), Env.unreached())
    # An unknown register is conservatively nonzero.
    assert possibly_nonzero(Reg("s"), Env((),))


# ---------------------------------------------------------------------------
# acquire_guard_edges
# ---------------------------------------------------------------------------


def _guarded_reader(cond_builder, *, redefine=False, mode="acq"):
    """A reader thread: ``r := a.mode; be cond(r), yes, no``."""
    pb = ProgramBuilder(atomics={"a"})
    with pb.function("w") as f:
        b = f.block("entry")
        b.store("x", 1, "na")
        b.store("a", 1, "rel")
        b.ret()
    with pb.function("r") as f:
        b = f.block("entry")
        b.load("r", "a", mode)
        if redefine:
            b.assign("r", 1)
        b.be(cond_builder("r"), "yes", "no")
        y = f.block("yes")
        y.load("s", "x", "na")
        y.ret()
        n = f.block("no")
        n.ret()
    pb.thread("w")
    pb.thread("r")
    return pb.build()


def test_acquire_guard_positive_polarity():
    program = _guarded_reader(lambda r: binop("!=", r, 0))
    edges = acquire_guard_edges(program.function("r"), "a")
    assert edges == frozenset({("entry", "yes")})


def test_acquire_guard_negative_polarity_guards_else_edge():
    program = _guarded_reader(lambda r: binop("==", r, 0))
    edges = acquire_guard_edges(program.function("r"), "a")
    assert edges == frozenset({("entry", "no")})


def test_acquire_guard_rejects_redefined_register():
    # The guard register is overwritten after the acquire load: the
    # branch no longer tests the flag, so no edge may be guarded.
    program = _guarded_reader(lambda r: binop("!=", r, 0), redefine=True)
    assert acquire_guard_edges(program.function("r"), "a") == frozenset()


def test_acquire_guard_requires_acquire_mode():
    program = _guarded_reader(lambda r: binop("!=", r, 0), mode="rlx")
    assert acquire_guard_edges(program.function("r"), "a") == frozenset()


def test_acquire_guard_rejects_unrecognized_condition():
    program = _guarded_reader(lambda r: binop("!=", r, 1))
    assert acquire_guard_edges(program.function("r"), "a") == frozenset()


def test_degenerate_branch_guards_nothing():
    pb = ProgramBuilder(atomics={"a"})
    with pb.function("r") as f:
        b = f.block("entry")
        b.load("r", "a", "acq")
        b.be("r", "join", "join")
        j = f.block("join")
        j.ret()
    pb.thread("r")
    program = pb.build()
    assert acquire_guard_edges(program.function("r"), "a") == frozenset()


# ---------------------------------------------------------------------------
# End-to-end conservative fallback
# ---------------------------------------------------------------------------


def _message_passing(guard):
    """Writer publishes x via flag a; a second *writer* of x waits on
    the guard.  With a recognized guard the ww-pair is discharged; with
    an unrecognized one the analysis must stay inconclusive."""
    pb = ProgramBuilder(atomics={"a"})
    with pb.function("t1") as f:
        b = f.block("entry")
        b.store("x", 1, "na")
        b.store("a", 1, "rel")
        b.ret()
    with pb.function("t2") as f:
        b = f.block("entry")
        b.load("r", "a", "acq")
        b.be(guard("r"), "yes", "no")
        y = f.block("yes")
        y.store("x", 2, "na")
        y.ret()
        n = f.block("no")
        n.ret()
    pb.thread("t1")
    pb.thread("t2")
    return pb.build()


def test_nested_guard_still_discharges_message_passing():
    program = _message_passing(lambda r: binop("!=", binop("!=", r, 0), 0))
    report = analyze_ww_races(program)
    assert report.verdict is StaticVerdict.RACE_FREE


def test_unrecognized_guard_falls_back_to_potential_race():
    program = _message_passing(lambda r: binop("!=", r, 1))
    report = analyze_ww_races(program)
    assert report.verdict is StaticVerdict.POTENTIAL_RACE
