"""The HTTP daemon end to end: routing, batch verdicts, admission
control, drain, and the ``repro serve`` process itself.

The daemon under test runs on a background-thread event loop inside the
test process (so chaos rules installed by a test reach the queue's fault
point); the final test spawns the real ``python -m repro serve`` process
and exercises the SIGTERM drain path from outside.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.robust.chaos import FaultRule, chaos_rules
from repro.robust.retry import RetryPolicy
from repro.serve.daemon import DaemonConfig, VerificationDaemon
from repro.serve.supervisor import SupervisorConfig

SB = """
//! name: SB
//! exists (0, 0)
//! forbidden (7, 7)
atomics x, y;
fn t1 { entry: x.rlx := 1; r1 := y.rlx; print(r1); return; }
fn t2 { entry: y.rlx := 1; r2 := x.rlx; print(r2); return; }
threads t1, t2;
"""

STRAIGHTLINE = """
fn t1 {
entry:
    r := 2;
    s := r * 3;
    print(s);
    return;
}
threads t1;
"""

FAST = SupervisorConfig(
    job_deadline_seconds=15.0,
    retry=RetryPolicy(max_attempts=3, base_delay_seconds=0.01),
)


class Harness:
    """A daemon on a background-thread event loop, plus a tiny client."""

    def __init__(self, config: DaemonConfig) -> None:
        self.daemon = VerificationDaemon(config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        self.port = asyncio.run_coroutine_threadsafe(
            self.daemon.start(), self.loop
        ).result(timeout=10)

    def drain(self, timeout=None) -> bool:
        return asyncio.run_coroutine_threadsafe(
            self.daemon.drain(timeout), self.loop
        ).result(timeout=60)

    def shutdown(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()

    # -- client ---------------------------------------------------------------

    def request(self, path, payload=None, timeout=60):
        """(status, body-dict, headers) for GET (payload None) or POST."""
        url = f"http://127.0.0.1:{self.port}{path}"
        data = None if payload is None else json.dumps(payload).encode()
        req = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read()), dict(resp.headers)
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read()), dict(err.headers)


@pytest.fixture
def served():
    harness = Harness(DaemonConfig(port=0, workers=2, supervisor=FAST))
    yield harness
    try:
        harness.drain(timeout=10)
    finally:
        harness.shutdown()


class TestRouting:
    def test_healthz(self, served):
        status, body, _ = served.request("/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["queue_depth"] == 0

    def test_metrics_counts_requests(self, served):
        served.request("/healthz")
        status, body, _ = served.request("/metrics")
        assert status == 200
        assert body["requests"] >= 2
        assert body["queue"]["capacity"] == 64
        assert "supervisor" in body

    def test_unknown_endpoint_404(self, served):
        status, body, _ = served.request("/v1/frobnicate", {"programs": [SB]})
        assert status == 404
        assert "unknown endpoint" in body["error"]

    def test_unknown_path_404(self, served):
        status, _, _ = served.request("/nope")
        assert status == 404


class TestBatches:
    def test_litmus_batch_proved(self, served):
        status, body, _ = served.request(
            "/v1/litmus",
            {"programs": [{"name": "SB", "source": SB}, STRAIGHTLINE]},
        )
        assert status == 200
        assert body["ok"] is True
        assert body["confidence"] == "PROVED"
        assert body["answered"] == body["total"] == 2
        by_name = {r["name"]: r for r in body["results"]}
        assert by_name["SB"]["ok"] is True
        assert by_name["SB"]["attempts"] == [["exhaustive", "ok"]]
        assert by_name["prog1"]["ok"] is True  # unnamed programs get progN

    def test_validate_batch(self, served):
        status, body, _ = served.request(
            "/v1/validate",
            {"programs": [STRAIGHTLINE], "opt": "constprop"},
        )
        assert status == 200
        assert body["ok"] is True and body["confidence"] == "PROVED"

    def test_races_batch(self, served):
        status, body, _ = served.request(
            "/v1/races", {"programs": [STRAIGHTLINE]}
        )
        assert status == 200
        assert body["ok"] is True

    def test_failing_spec_fails_batch(self, served):
        bad = SB.replace("//! exists (0, 0)", "//! exists (9, 9)")
        status, body, _ = served.request("/v1/litmus", {"programs": [bad]})
        assert status == 200
        assert body["ok"] is False
        assert body["results"][0]["ok"] is False  # a verdict, not an error

    def test_unanswerable_job_is_not_a_verdict(self, served):
        status, body, _ = served.request(
            "/v1/litmus", {"programs": [SB, "garbage ^ program"]}
        )
        assert status == 200
        assert body["ok"] is False  # an unanswered job can't make a batch ok
        assert body["answered"] == 1 and body["total"] == 2
        unanswered = body["results"][1]
        assert unanswered["ok"] is None
        assert "every rung failed" in unanswered["error"]


class TestAdmission:
    def test_bad_json_400(self, served):
        url = f"http://127.0.0.1:{served.port}/v1/litmus"
        req = urllib.request.Request(url, data=b"{torn")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_missing_programs_400(self, served):
        status, body, _ = served.request("/v1/litmus", {"nope": 1})
        assert status == 400
        assert "programs" in body["error"]

    def test_empty_batch_400(self, served):
        status, _, _ = served.request("/v1/litmus", {"programs": []})
        assert status == 400

    def test_oversize_batch_413(self, served):
        programs = [SB] * (served.daemon.config.max_batch_jobs + 1)
        status, body, _ = served.request("/v1/litmus", {"programs": programs})
        assert status == 413
        assert "max_batch_jobs" in body["error"]

    def test_injected_queue_full_is_429_with_retry_after(self, served):
        """Chaos forces the backpressure path deterministically: the
        client gets 429 plus a Retry-After hint, and the very next
        request (chaos uninstalled) succeeds."""
        with chaos_rules(FaultRule("queue.put", kind="error")):
            status, body, headers = served.request(
                "/v1/litmus", {"programs": [SB]}
            )
        assert status == 429
        assert body["retry_after_seconds"] >= 1.0
        assert int(headers["Retry-After"]) >= 1
        status, body, _ = served.request("/v1/litmus", {"programs": [SB]})
        assert status == 200 and body["ok"] is True


class TestDrain:
    def test_drain_refuses_then_exits_clean(self, served):
        status, body, _ = served.request("/v1/litmus", {"programs": [SB]})
        assert status == 200
        assert served.drain(timeout=30) is True
        # The listener is closed: new connections are refused outright.
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{served.port}/healthz", timeout=5
            )

    def test_draining_flag_turns_batches_away(self):
        harness = Harness(DaemonConfig(port=0, workers=1, supervisor=FAST))
        try:
            harness.daemon.draining = True  # drain announced, not yet complete
            status, body, _ = harness.request("/v1/litmus", {"programs": [SB]})
            assert status == 503
            assert "draining" in body["error"]
            status, body, _ = harness.request("/healthz")
            assert status == 200 and body["status"] == "draining"
        finally:
            harness.daemon.draining = False
            harness.drain(timeout=10)
            harness.shutdown()


class TestServeProcess:
    """ISSUE satellite (CI smoke): the real process end to end —
    start, verify a batch, SIGTERM, clean exit."""

    def test_smoke_start_verify_sigterm(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.getcwd(), "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--store", str(tmp_path / "store")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on 127.0.0.1:" in banner
            port = int(banner.split("127.0.0.1:")[1].split()[0])

            payload = json.dumps({"programs": [{"name": "SB", "source": SB}]})
            req = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/litmus", data=payload.encode()
            )
            deadline = time.monotonic() + 60
            body = None
            while body is None and time.monotonic() < deadline:
                try:
                    with urllib.request.urlopen(req, timeout=60) as resp:
                        body = json.loads(resp.read())
                except (urllib.error.URLError, ConnectionError):
                    time.sleep(0.2)
            assert body is not None, "service never answered"
            assert body["ok"] is True
            assert body["confidence"] == "PROVED"

            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        except BaseException:
            proc.kill()
            proc.wait()
            raise
        assert proc.returncode == 0, err
        assert "draining" in out
        assert "stopped (clean)" in out
