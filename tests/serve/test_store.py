"""The content-addressed store: atomicity, quarantine, eviction,
concurrency.

Acceptance (ISSUE): parallel writers racing the same directory end in a
byte-identical state to serial writes; corrupt entries are quarantined
and recomputed, never fatal; a mid-write SIGKILL never publishes a torn
entry (that half lives in ``tests/perf/test_cache.py`` against the
cache facade — here we cover the store's own contract).
"""

import json
import multiprocessing
import os
import time

from repro.robust.chaos import corrupt_file, truncate_file
from repro.serve.store import ContentStore, content_key, payload_digest


class TestKeysAndDigests:
    def test_content_key_is_stable_and_discriminating(self):
        assert content_key("a", "b") == content_key("a", "b")
        assert content_key("a", "b") != content_key("ab", "")
        assert content_key("a", "b") != content_key("a", "c")

    def test_payload_digest_canonical(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ContentStore(str(tmp_path))
        key = content_key("prog")
        assert store.get(key) is None
        store.put(key, {"verdict": "ok"})
        assert store.get(key) == {"verdict": "ok"}
        assert store.stats()["hits"] == 1
        assert store.stats()["misses"] == 1
        assert store.entry_count() == 1

    def test_last_writer_wins(self, tmp_path):
        store = ContentStore(str(tmp_path))
        key = content_key("prog")
        store.put(key, {"v": 1})
        store.put(key, {"v": 2})
        assert store.get(key) == {"v": 2}
        assert store.entry_count() == 1


class TestQuarantine:
    def _poison(self, tmp_path, mutate):
        store = ContentStore(str(tmp_path))
        key = content_key("prog")
        store.put(key, {"v": 1})
        (path,) = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(str(tmp_path))
            for name in names
            if name.endswith(".json") and os.path.basename(root) != "quarantine"
        ]
        mutate(path)
        return store, key, path

    def test_corrupt_json_quarantined(self, tmp_path):
        store, key, path = self._poison(
            tmp_path, lambda p: open(p, "w").write("{torn")
        )
        assert store.get(key) is None
        assert store.quarantined == 1
        assert not os.path.exists(path)
        assert store.quarantine_count() == 1

    def test_bitflip_quarantined(self, tmp_path):
        store, key, _ = self._poison(tmp_path, lambda p: corrupt_file(p, seed=2))
        assert store.get(key) is None
        assert store.quarantined == 1

    def test_truncation_quarantined(self, tmp_path):
        store, key, _ = self._poison(
            tmp_path, lambda p: truncate_file(p, fraction=0.4)
        )
        assert store.get(key) is None
        assert store.quarantined == 1

    def test_wrong_digest_quarantined(self, tmp_path):
        def swap_payload(path):
            entry = json.load(open(path))
            entry["payload"] = {"v": 999}  # digest now stale
            json.dump(entry, open(path, "w"))

        store, key, _ = self._poison(tmp_path, swap_payload)
        assert store.get(key) is None
        assert store.quarantined == 1

    def test_recompute_heals(self, tmp_path):
        store, key, _ = self._poison(
            tmp_path, lambda p: open(p, "w").write("garbage")
        )
        assert store.get(key) is None
        store.put(key, {"v": 1})
        assert store.get(key) == {"v": 1}


class TestEviction:
    def test_lru_by_recency(self, tmp_path):
        store = ContentStore(str(tmp_path), max_entries=2)
        keys = [content_key(f"p{i}") for i in range(3)]
        now = time.time()
        for index, key in enumerate(keys[:2]):
            store.put(key, {"i": index})
            # Distinct mtimes without sleeping: backdate earlier entries.
            os.utime(store._path(key), (now - 100 + index, now - 100 + index))
        assert store.get(keys[0]) is not None  # refresh key0's clock
        store.put(keys[2], {"i": 2})  # triggers eviction; key1 is LRU
        assert store.get(keys[1]) is None
        assert store.get(keys[0]) is not None
        assert store.get(keys[2]) is not None
        assert store.evictions == 1

    def test_max_bytes(self, tmp_path):
        store = ContentStore(str(tmp_path), max_bytes=1)
        store.put(content_key("a"), {"v": "x" * 100})
        store.put(content_key("b"), {"v": "y" * 100})
        assert store.entry_count() <= 1

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = ContentStore(str(tmp_path))
        for i in range(5):
            store.put(content_key(f"p{i}"), {"i": i})
        assert store.evict() == 0
        assert store.entry_count() == 5

    def test_eviction_spares_quarantine(self, tmp_path):
        store = ContentStore(str(tmp_path), max_entries=1)
        key = content_key("bad")
        store.put(key, {"v": 1})
        path = store._path(key)
        corrupt_file(path, seed=1)
        assert store.get(key) is None  # quarantined
        for i in range(3):
            store.put(content_key(f"p{i}"), {"i": i})
        assert store.quarantine_count() == 1  # evictions never touch it


class TestPreload:
    def test_warm_start_serves_from_memory(self, tmp_path):
        writer = ContentStore(str(tmp_path))
        keys = [content_key(f"p{i}") for i in range(4)]
        for index, key in enumerate(keys):
            writer.put(key, {"i": index})

        warm = ContentStore(str(tmp_path))
        assert warm.preload() == 4
        assert warm.preloaded == 4
        for index, key in enumerate(keys):
            assert warm.get(key) == {"i": index}
        assert warm.hits == 4

    def test_preload_quarantines_rot(self, tmp_path):
        writer = ContentStore(str(tmp_path))
        good, bad = content_key("good"), content_key("bad")
        writer.put(good, {"v": 1})
        writer.put(bad, {"v": 2})
        corrupt_file(writer._path(bad), seed=9)

        warm = ContentStore(str(tmp_path))
        assert warm.preload() == 1
        assert warm.quarantined == 1
        assert warm.get(good) == {"v": 1}
        assert warm.get(bad) is None

    def test_preload_still_sees_later_disk_writes(self, tmp_path):
        warm = ContentStore(str(tmp_path))
        warm.preload()
        other = ContentStore(str(tmp_path))
        key = content_key("late")
        other.put(key, {"v": 7})
        assert warm.get(key) == {"v": 7}  # disk fallthrough


def _hammer(root: str, worker: int, keys, barrier) -> None:
    """Child task: race the same key set against sibling writers."""
    store = ContentStore(root)
    barrier.wait()
    for _round in range(5):
        for index, key in enumerate(keys):
            store.put(key, {"key": index})  # same content per key everywhere
            got = store.get(key)
            assert got is None or got == {"key": index}


class TestConcurrentWriters:
    def test_parallel_writers_end_byte_identical_to_serial(self, tmp_path):
        """ISSUE acceptance: N processes racing the same keys leave the
        store exactly as one serial writer would — same entries, same
        bytes, nothing quarantined."""
        parallel_root = str(tmp_path / "parallel")
        serial_root = str(tmp_path / "serial")
        keys = [content_key(f"p{i}") for i in range(6)]

        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(4)
        workers = [
            ctx.Process(target=_hammer, args=(parallel_root, w, keys, barrier))
            for w in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0

        serial = ContentStore(serial_root)
        for index, key in enumerate(keys):
            serial.put(key, {"key": index})

        raced = ContentStore(parallel_root)
        assert raced.quarantine_count() == 0
        assert raced.entry_count() == len(keys)
        for key in keys:
            with open(raced._path(key), "rb") as handle:
                parallel_bytes = handle.read()
            with open(serial._path(key), "rb") as handle:
                serial_bytes = handle.read()
            assert parallel_bytes == serial_bytes

    def test_concurrent_eviction_is_cooperative(self, tmp_path):
        root = str(tmp_path)
        primer = ContentStore(root)
        for i in range(10):
            primer.put(content_key(f"p{i}"), {"i": i})
        stores = [ContentStore(root, max_entries=4) for _ in range(3)]
        removed = sum(store.evict() for store in stores)
        assert removed == 6  # no double-count under the store lock
        assert primer.entry_count() == 4
