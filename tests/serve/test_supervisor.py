"""The supervisor: retry/degradation ladder, confidence capping, poison
quarantine, store integration.

The soundness property under test (ISSUE acceptance): *no sequence of
worker failures can make the service overclaim* — an answer produced on
a degraded rung is capped at that rung's confidence on the parent side,
and a job the ladder cannot answer comes back unanswered, never guessed.

Chaos targeting note: each attempt runs in a freshly forked child which
inherits a COPY of the injector, so per-process ``count``/``after``
counters reset every attempt.  Rules therefore target rungs via the
rung-qualified key ``"<name>:<rung>"`` that ``supervisor.job`` passes.
"""

import pytest

from repro.robust.chaos import FaultRule, chaos_rules
from repro.robust.degrade import RUNG_BOUNDED, RUNG_EXHAUSTIVE, RUNG_SAMPLED
from repro.robust.retry import RetryPolicy
from repro.serve.store import ContentStore
from repro.serve.supervisor import (
    JOB_KINDS,
    JobSpec,
    Supervisor,
    SupervisorConfig,
)

SB = """
//! name: SB
//! exists (0, 0)
//! forbidden (7, 7)
atomics x, y;
fn t1 { entry: x.rlx := 1; r1 := y.rlx; print(r1); return; }
fn t2 { entry: y.rlx := 1; r2 := x.rlx; print(r2); return; }
threads t1, t2;
"""

STRAIGHTLINE = """
fn t1 {
entry:
    r := 2;
    s := r * 3;
    print(s);
    return;
}
threads t1;
"""

FAST = SupervisorConfig(
    job_deadline_seconds=15.0,
    retry=RetryPolicy(max_attempts=3, base_delay_seconds=0.01),
    quarantine_after=3,
)


def spec(kind="litmus", source=SB, name="t", **options):
    return JobSpec(kind, source, name=name, options=options)


class TestSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec("frobnicate", SB)

    def test_content_key_discriminates_options(self):
        a = JobSpec("validate", SB, options={"opt": "constprop"})
        b = JobSpec("validate", SB, options={"opt": "dce"})
        assert a.content_key() != b.content_key()
        assert a.content_key() == JobSpec(
            "validate", SB, name="other", options={"opt": "constprop"}
        ).content_key()  # names don't change content identity


class TestHappyPath:
    def test_litmus_proved(self):
        result = Supervisor(config=FAST).run_job(spec())
        assert result.ok is True
        assert result.confidence == "PROVED"
        assert result.rung == RUNG_EXHAUSTIVE
        assert result.attempts == ((RUNG_EXHAUSTIVE, "ok"),)
        assert not result.cached

    def test_litmus_spec_violation_is_a_verdict(self):
        bad = SB.replace("//! exists (0, 0)", "//! exists (9, 9)")
        result = Supervisor(config=FAST).run_job(spec(source=bad))
        assert result.ok is False  # answered, with PROVED evidence of failure
        assert result.confidence == "PROVED"
        assert "not observed" in result.detail

    def test_validate_proved(self):
        result = Supervisor(config=FAST).run_job(
            spec(kind="validate", source=STRAIGHTLINE, opt="constprop")
        )
        assert result.ok is True
        assert result.confidence == "PROVED"

    def test_races_answered(self):
        result = Supervisor(config=FAST).run_job(
            spec(kind="races", source=STRAIGHTLINE)
        )
        assert result.ok is True
        assert result.confidence == "PROVED"

    def test_parse_error_is_unanswered_not_a_crash(self):
        result = Supervisor(config=FAST).run_job(spec(source="not a program ^"))
        assert result.ok is None
        assert "every rung failed" in result.error
        assert len(result.attempts) == 3  # the whole ladder was walked
        assert Supervisor(config=FAST).stats()["worker_crashes"] == 0


class TestStoreIntegration:
    def test_second_submission_is_cached(self, tmp_path):
        supervisor = Supervisor(ContentStore(str(tmp_path)), FAST)
        first = supervisor.run_job(spec())
        second = supervisor.run_job(spec())
        assert not first.cached and second.cached
        assert (second.ok, second.confidence) == (first.ok, first.confidence)
        assert supervisor.stats()["cached"] == 1

    def test_cache_is_shared_across_supervisors(self, tmp_path):
        store = ContentStore(str(tmp_path))
        Supervisor(store, FAST).run_job(spec())
        warm = Supervisor(store, FAST).run_job(spec())
        assert warm.cached and warm.confidence == "PROVED"


class TestDegradation:
    def test_killed_exhaustive_rung_caps_at_bounded(self, tmp_path):
        """The bounded rerun may well explore exhaustively — the answer
        is still capped at BOUNDED because the PROVED rung never ran."""
        store = ContentStore(str(tmp_path))
        supervisor = Supervisor(store, FAST)
        with chaos_rules(
            FaultRule("supervisor.job", kind="kill", key="t:exhaustive")
        ):
            result = supervisor.run_job(spec())
        assert result.ok is True
        assert result.rung == RUNG_BOUNDED
        assert result.confidence == "BOUNDED"  # never PROVED off a degraded path
        assert result.attempts == (
            (RUNG_EXHAUSTIVE, "crashed"), (RUNG_BOUNDED, "ok"),
        )
        assert supervisor.stats()["degraded"] == 1
        # Degraded answers are never persisted: a later warm start must
        # not replay BOUNDED evidence as if it were a proof.
        assert store.get(spec().content_key()) is None

    def test_two_dead_rungs_fall_to_sampled(self):
        with chaos_rules(
            FaultRule("supervisor.job", kind="kill", key="t:exhaustive"),
            FaultRule("supervisor.job", kind="kill", key="t:bounded"),
        ):
            result = Supervisor(config=FAST).run_job(spec())
        assert result.ok is True
        assert result.rung == RUNG_SAMPLED
        assert result.confidence == "SAMPLED"

    def test_oom_counts_as_a_worker_death(self):
        supervisor = Supervisor(config=FAST)
        with chaos_rules(
            FaultRule("supervisor.job", kind="oom", key="t:exhaustive")
        ):
            result = supervisor.run_job(spec())
        assert result.ok is True
        assert supervisor.stats()["worker_crashes"] == 1

    def test_single_attempt_config_disables_degradation(self):
        one_shot = SupervisorConfig(
            job_deadline_seconds=15.0, retry=RetryPolicy(max_attempts=1)
        )
        with chaos_rules(
            FaultRule("supervisor.job", kind="kill", key="t:exhaustive")
        ):
            result = Supervisor(config=one_shot).run_job(spec())
        assert result.ok is None
        assert result.attempts == ((RUNG_EXHAUSTIVE, "crashed"),)


class TestQuarantine:
    def test_poison_job_is_quarantined_then_refused(self):
        supervisor = Supervisor(config=FAST)
        with chaos_rules(
            FaultRule("supervisor.job", kind="kill", count=None)
        ):
            first = supervisor.run_job(spec())
        assert first.ok is None
        assert "quarantined" in first.error
        assert len(first.attempts) == FAST.quarantine_after
        assert supervisor.is_quarantined(spec().content_key())

        # Resubmission is refused immediately: no worker is burned.
        crashes_before = supervisor.stats()["worker_crashes"]
        again = supervisor.run_job(spec())
        assert again.ok is None
        assert again.attempts == ()
        assert "poison" in again.error
        assert supervisor.stats()["worker_crashes"] == crashes_before

    def test_other_jobs_unaffected_by_poison(self):
        """Quarantine is per content key: a different program sails
        through even while the poison one is being refused."""
        supervisor = Supervisor(config=FAST)
        with chaos_rules(
            FaultRule("supervisor.job", kind="kill", key="bad:exhaustive",
                      count=None),
            FaultRule("supervisor.job", kind="kill", key="bad:bounded",
                      count=None),
            FaultRule("supervisor.job", kind="kill", key="bad:sampled",
                      count=None),
        ):
            dead = supervisor.run_job(spec(name="bad"))
            alive = supervisor.run_job(
                spec(kind="races", source=STRAIGHTLINE, name="good")
            )
        assert dead.ok is None
        assert alive.ok is True and alive.confidence == "PROVED"


class TestBatchAndStats:
    def test_run_batch_preserves_order(self):
        supervisor = Supervisor(config=FAST)
        results = supervisor.run_batch([
            spec(name="a"), spec(kind="races", source=STRAIGHTLINE, name="b"),
        ])
        assert [r.name for r in results] == ["a", "b"]
        assert all(r.ok is True for r in results)
        stats = supervisor.stats()
        assert stats["jobs"] == 2 and stats["answered"] == 2

    def test_result_dict_shape(self):
        result = Supervisor(config=FAST).run_job(spec())
        data = result.as_dict()
        assert data["ok"] is True
        assert data["confidence"] == "PROVED"
        assert data["attempts"] == [[RUNG_EXHAUSTIVE, "ok"]]
        assert set(data) == {
            "name", "kind", "ok", "confidence", "detail", "rung",
            "attempts", "cached", "error", "elapsed_seconds",
        }

    def test_all_kinds_are_routable(self):
        assert set(JOB_KINDS) == {"litmus", "validate", "races"}
