"""The bounded sharded queue: ordering, backpressure, drain."""

import threading

import pytest

from repro.robust.chaos import FaultRule, chaos_rules
from repro.serve.queue import QueueClosed, QueueFull, ShardedQueue


class TestOrdering:
    def test_same_key_is_fifo(self):
        queue = ShardedQueue(capacity=10, shards=4)
        for i in range(5):
            queue.put(i, key="same")
        assert [queue.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_round_robin_across_lanes(self):
        queue = ShardedQueue(capacity=10, shards=2)
        # Two keys landing in different lanes; drain must interleave.
        keys = ["a", "b"]
        lanes = {key: queue.shard_of(key) for key in keys}
        if lanes["a"] == lanes["b"]:
            pytest.skip("crc collision for this shard count")
        queue.put("a1", key="a")
        queue.put("a2", key="a")
        queue.put("b1", key="b")
        drained = [queue.get() for _ in range(3)]
        assert drained.index("b1") < 2  # b's lane served before a's backlog

    def test_shard_of_is_deterministic(self):
        q1 = ShardedQueue(capacity=4, shards=8)
        q2 = ShardedQueue(capacity=4, shards=8)
        for key in ("x", "y", "zebra"):
            assert q1.shard_of(key) == q2.shard_of(key)


class TestBackpressure:
    def test_full_queue_rejects_with_retry_hint(self):
        queue = ShardedQueue(capacity=2, shards=2)
        queue.put(1, key="a")
        queue.put(2, key="b")
        with pytest.raises(QueueFull) as excinfo:
            queue.put(3, key="c")
        assert excinfo.value.retry_after_seconds >= 1.0
        assert queue.stats()["rejected"] == 1
        assert queue.depth == 2  # nothing was admitted

    def test_capacity_is_global_not_per_shard(self):
        queue = ShardedQueue(capacity=3, shards=8)
        for i in range(3):
            queue.put(i, key=f"k{i}")
        with pytest.raises(QueueFull):
            queue.put(99, key="overflow")

    def test_injected_queue_full(self):
        """The chaos ``queue.put`` site forces the 429 path on demand."""
        queue = ShardedQueue(capacity=100)
        with chaos_rules(FaultRule("queue.put", kind="error")):
            with pytest.raises(QueueFull):
                queue.put(1, key="victim")
        queue.put(2, key="fine")  # chaos uninstalled: back to normal
        assert queue.stats() == {
            "depth": 1, "capacity": 100, "shards": 4,
            "enqueued": 1, "dequeued": 0, "rejected": 1,
        }

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ShardedQueue(capacity=0)
        with pytest.raises(ValueError):
            ShardedQueue(capacity=1, shards=0)


class TestDrain:
    def test_close_refuses_new_work(self):
        queue = ShardedQueue(capacity=4)
        queue.put(1, key="a")
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put(2, key="b")

    def test_close_lets_consumers_drain(self):
        queue = ShardedQueue(capacity=4)
        for i in range(3):
            queue.put(i, key=f"k{i}")
        queue.close()
        drained = []
        while True:
            item = queue.get()
            if item is None:
                break
            drained.append(item)
        assert sorted(drained) == [0, 1, 2]

    def test_close_wakes_blocked_consumers(self):
        queue = ShardedQueue(capacity=4)
        results = []

        def consume():
            results.append(queue.get())  # blocks until close

        thread = threading.Thread(target=consume)
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [None]

    def test_get_timeout_returns_none_while_open(self):
        queue = ShardedQueue(capacity=4)
        assert queue.get(timeout=0.05) is None
        assert not queue.closed


class TestThreaded:
    def test_producers_and_consumers_agree(self):
        queue = ShardedQueue(capacity=64, shards=4)
        seen = []
        lock = threading.Lock()

        def consume():
            while True:
                item = queue.get()
                if item is None:
                    return
                with lock:
                    seen.append(item)

        consumers = [threading.Thread(target=consume) for _ in range(3)]
        for thread in consumers:
            thread.start()
        for i in range(50):
            queue.put(i, key=f"k{i % 7}")
        queue.close()
        for thread in consumers:
            thread.join(timeout=10)
            assert not thread.is_alive()
        assert sorted(seen) == list(range(50))
        assert queue.stats()["dequeued"] == 50
