"""CLI integration tests (driving `main` directly)."""

import pytest

from repro.cli import main

SB = """
atomics x, y;
fn t1 { entry: x.rlx := 1; r1 := y.rlx; print(r1); return; }
fn t2 { entry: y.rlx := 1; r2 := x.rlx; print(r2); return; }
threads t1, t2;
"""

RACY = """
fn t1 { entry: a.na := 1; return; }
fn t2 { entry: a.na := 2; return; }
threads t1, t2;
"""

OPTIMIZABLE = """
fn t1 {
entry:
    r := 2;
    s := r * 3;
    dead := 9;
    print(s);
    return;
}
threads t1;
"""


@pytest.fixture
def sb_file(tmp_path):
    path = tmp_path / "sb.rtl"
    path.write_text(SB)
    return str(path)


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.rtl"
    path.write_text(RACY)
    return str(path)


@pytest.fixture
def opt_file(tmp_path):
    path = tmp_path / "opt.rtl"
    path.write_text(OPTIMIZABLE)
    return str(path)


def test_explore(sb_file, capsys):
    assert main(["explore", sb_file]) == 0
    out = capsys.readouterr().out
    assert "(0, 0)" in out
    assert "exhaustive" in out


def test_explore_traces_flag(sb_file, capsys):
    assert main(["explore", sb_file, "--traces"]) == 0
    assert "out(" in capsys.readouterr().out


def test_explore_nonpreemptive(sb_file, capsys):
    assert main(["explore", sb_file, "--np"]) == 0
    assert "(0, 0)" in capsys.readouterr().out


def test_races_clean(sb_file, capsys):
    assert main(["races", sb_file]) == 0
    assert "race-free" in capsys.readouterr().out


def test_races_detects(racy_file, capsys):
    assert main(["races", racy_file]) == 1
    assert "RACY" in capsys.readouterr().out


def test_validate_pipeline(opt_file, capsys):
    assert main(["validate", opt_file, "--show"]) == 0
    out = capsys.readouterr().out
    assert "[OK]" in out
    assert "print(6)" in out  # folded


def test_validate_single_pass(opt_file, capsys):
    assert main(["validate", opt_file, "--opt", "dce", "--no-wwrf"]) == 0
    assert "[OK]" in capsys.readouterr().out


def test_validate_unknown_pass(opt_file):
    with pytest.raises(SystemExit):
        main(["validate", opt_file, "--opt", "nonsense"])


def test_run(sb_file, capsys):
    assert main(["run", sb_file, "--runs", "3"]) == 0
    out = capsys.readouterr().out
    assert out.count("run ") == 3


def test_witness_found(sb_file, capsys):
    assert main(["witness", sb_file, "--trace", "0,0,done"]) == 0
    assert "out(0)" in capsys.readouterr().out


def test_witness_not_found(sb_file, capsys):
    assert main(["witness", sb_file, "--trace", "7,done"]) == 1
    assert "no execution" in capsys.readouterr().out


def test_fmt_roundtrip(sb_file, capsys):
    assert main(["fmt", sb_file]) == 0
    out = capsys.readouterr().out
    from repro.lang.parser import parse_program

    assert parse_program(out) == parse_program(SB)


def test_promises_flag(tmp_path, capsys):
    lb = """
    atomics x, y;
    fn t1 { entry: r1 := x.rlx; y.rlx := 1; print(r1); return; }
    fn t2 { entry: r2 := y.rlx; x.rlx := r2; print(r2); return; }
    threads t1, t2;
    """
    path = tmp_path / "lb.rtl"
    path.write_text(lb)
    assert main(["explore", str(path), "--promises", "1"]) == 0
    assert "(1, 1)" in capsys.readouterr().out
