"""Integration test: the SPSC handoff protocol of examples/message_queue.py
(surface syntax → lowering → exploration → races → validation)."""

import pytest

from repro import (
    behaviors,
    lower_program,
    parse_csimp,
    rw_races,
    validate_optimizer,
    ww_rf,
)
from repro.opt.base import compose
from repro.opt.constprop import ConstProp
from repro.opt.cse import CSE
from repro.opt.dce import DCE

QUEUE = """
atomics seq;

fn producer() {{
    payload.na = 11;
    seq.{publish} = 1;
    while (seq.{observe} == 1);
    payload.na = 22;
    seq.{publish} = 3;
}}

fn consumer() {{
    while (seq.{observe} == 0);
    m1 = payload.na;
    print(m1);
    seq.{publish} = 2;
    while (seq.{observe} == 2);
    m2 = payload.na;
    print(m2);
}}

threads producer, consumer;
"""


def build(publish: str, observe: str):
    return lower_program(parse_csimp(QUEUE.format(publish=publish, observe=observe)))


@pytest.fixture(scope="module")
def relacq():
    return build("rel", "acq")


def test_relacq_delivers_exact_messages(relacq):
    result = behaviors(relacq)
    assert result.exhaustive
    assert result.outputs() == frozenset({(11, 22)})


def test_relacq_is_ww_race_free(relacq):
    assert ww_rf(relacq).race_free


def test_relacq_has_no_payload_rw_race(relacq):
    assert not any(w.loc == "payload" for w in rw_races(relacq))


def test_relaxed_protocol_leaks_stale_payloads():
    weak = build("rlx", "rlx")
    outs = behaviors(weak).outputs()
    assert (0, 0) in outs  # both reads stale
    assert (11, 22) in outs  # the intended delivery still possible


def test_relaxed_protocol_races_on_payload():
    weak = build("rlx", "rlx")
    assert any(w.loc == "payload" for w in rw_races(weak))


def test_second_message_requires_consumer_ack(relacq):
    """The producer's second write is ordered after the consumer's ack
    (seq = 2, release) — that acquire edge is what prevents a ww-race
    between the two payload writes and the consumer's first read."""
    # Remove the ack wait: producer overwrites the payload unacknowledged.
    broken_src = QUEUE.format(publish="rel", observe="acq").replace(
        "while (seq.acq == 1);", "skip;"
    )
    broken = lower_program(parse_csimp(broken_src))
    outs = behaviors(broken).outputs()
    assert (22, 22) in outs  # first message overwritten before the read


def test_pipeline_validates(relacq):
    pipeline = compose(compose(ConstProp(), CSE()), DCE())
    assert validate_optimizer(pipeline, relacq).ok
