"""CLI error-path tests."""


from repro.cli import main


def test_missing_file_is_graceful(capsys):
    assert main(["explore", "/definitely/not/here.rtl"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_parse_error_is_graceful(tmp_path, capsys):
    path = tmp_path / "bad.rtl"
    path.write_text("fn f { oops")
    assert main(["explore", str(path)]) == 2
    assert "parse error" in capsys.readouterr().err


def test_csimp_parse_error_is_graceful(tmp_path, capsys):
    path = tmp_path / "bad.csimp"
    path.write_text("fn f() { while }")
    assert main(["explore", str(path)]) == 2
    assert "parse error" in capsys.readouterr().err


def test_litmus_failure_exit_code(tmp_path, capsys):
    path = tmp_path / "wrong.litmus"
    path.write_text(
        "//! exists (9, 9)\n"
        "fn f { entry: print(1); return; }\n"
        "threads f;\n"
    )
    assert main(["litmus", str(path)]) == 1
    assert "FAILED" in capsys.readouterr().out


def test_litmus_pass_exit_code(tmp_path, capsys):
    path = tmp_path / "right.litmus"
    path.write_text(
        "//! only (1)\n"
        "fn f { entry: print(1); return; }\n"
        "threads f;\n"
    )
    assert main(["litmus", str(path), "--show-outcomes"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "(1,)" in out
