"""Fuzz driver tests, including a detector-sanity check: the campaign must
actually catch an unsound optimizer."""


from repro.fuzz import fuzz_optimizer
from repro.litmus.generator import GeneratorConfig
from repro.opt.constprop import ConstProp
from repro.opt.dce import DCE
from repro.opt.unsound import RedundantWriteIntroduction

SMALL = GeneratorConfig(threads=2, instrs_per_thread=4)


def test_sound_optimizer_fuzzes_clean():
    report = fuzz_optimizer(DCE(), range(10), SMALL, check_wwrf=False)
    assert report.ok
    assert report.seeds == 10
    assert report.transformed > 0


def test_machine_equivalence_spot_check():
    report = fuzz_optimizer(
        ConstProp(), range(5), SMALL, check_wwrf=False, check_machine_equivalence=True
    )
    assert report.ok


def test_unsound_optimizer_is_caught():
    """Sanity of the harness itself: a pass that breaks ww-RF preservation
    must produce failures with replayable seeds."""
    report = fuzz_optimizer(RedundantWriteIntroduction(), range(15), SMALL)
    assert not report.ok
    failure = report.failures[0]
    assert "fn " in failure.source_text  # replayable source attached
    assert failure.seed >= 0


def test_report_rendering():
    report = fuzz_optimizer(DCE(), range(3), SMALL, check_wwrf=False)
    text = str(report)
    assert "fuzz[dce]" in text and "3 programs" in text


def test_cli_fuzz_command(capsys):
    from repro.cli import main

    assert main(["fuzz", "--opt", "constprop", "--seeds", "0:5", "--no-wwrf"]) == 0
    assert "fuzz[constprop]" in capsys.readouterr().out
