"""Repository self-checks: the documentation artifacts the README promises
exist and carry their required content."""

import pathlib


ROOT = pathlib.Path(__file__).resolve().parents[1]


def read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"missing {name}"
    return path.read_text()


def test_design_confirms_paper_match():
    text = read("DESIGN.md")
    assert "matches" in text
    assert "Verifying" in text and "Promising" in text


def test_design_has_substitution_table_and_experiment_index():
    text = read("DESIGN.md")
    assert "Substitutions" in text
    assert "Experiment index" in text
    for exp in ("E-FIG1", "E-FIG4", "E-FIG5", "E-FIG15", "E-THM41", "E-LM51", "E-THM66"):
        assert exp in text, exp


def test_experiments_covers_every_design_experiment():
    design = read("DESIGN.md")
    experiments = read("EXPERIMENTS.md")
    import re

    declared = set(re.findall(r"E-[A-Z0-9]+", design))
    recorded = set(re.findall(r"E-[A-Z0-9]+", experiments))
    missing = {e.rstrip("/") for e in declared} - recorded
    # Allow compound ids like E-REORDER/E-FIG16 to be matched individually.
    missing = {e for e in missing if e not in recorded}
    assert not missing, f"experiments not recorded: {sorted(missing)}"


def test_readme_has_required_sections():
    text = read("README.md")
    for heading in ("## Install", "## Quickstart", "## Architecture", "## Examples"):
        assert heading in text, heading


def test_docs_chapters_exist():
    for chapter in ("language", "semantics", "verification", "optimizations", "cli"):
        assert (ROOT / "docs" / f"{chapter}.md").exists(), chapter


def test_examples_match_readme_table():
    readme = read("README.md")
    for example in sorted((ROOT / "examples").glob("*.py")):
        assert example.name in readme, f"{example.name} not documented in README"
