"""Constant-value analysis tests."""


from repro.analysis.lattice import FLAT_TOP, flat_const
from repro.analysis.value import Env, eval_abstract, value_analysis
from repro.lang.builder import ProgramBuilder, binop, straightline_program
from repro.lang.syntax import AccessMode, BinOp, Const, Load, Reg


class TestEnv:
    def test_initial_registers_are_zero(self):
        env = Env.initial()
        assert env.get("r") == flat_const(0)

    def test_set_get(self):
        env = Env.initial().set("r", flat_const(5))
        assert env.get("r") == flat_const(5)

    def test_unreached_absorbs(self):
        env = Env.unreached()
        assert env.join(Env.initial()) == Env.initial()

    def test_join_differing_constants(self):
        a = Env.initial().set("r", flat_const(1))
        b = Env.initial().set("r", flat_const(2))
        assert a.join(b).get("r") == FLAT_TOP

    def test_top_everything(self):
        env = Env.initial().set("r", flat_const(1)).top_everything()
        assert env.get("r") == FLAT_TOP
        assert env.get("other") == FLAT_TOP


class TestAbstractEval:
    def test_const(self):
        assert eval_abstract(Const(7), Env.initial()) == flat_const(7)

    def test_register(self):
        env = Env.initial().set("r", flat_const(3))
        assert eval_abstract(Reg("r"), env) == flat_const(3)

    def test_folding(self):
        env = Env.initial().set("r", flat_const(3))
        expr = BinOp("*", Reg("r"), Const(4))
        assert eval_abstract(expr, env) == flat_const(12)

    def test_top_propagates(self):
        env = Env.initial().set("r", FLAT_TOP)
        expr = BinOp("+", Reg("r"), Const(1))
        assert eval_abstract(expr, env) == FLAT_TOP

    def test_comparison_folds(self):
        env = Env.initial()
        assert eval_abstract(BinOp("<", Const(1), Const(2)), env) == flat_const(1)


class TestAnalysis:
    def test_constants_propagate_across_blocks(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        entry = f.block("entry")
        entry.assign("r", 5)
        entry.jmp("next")
        f.block("next").print_("r")
        pb.thread("f")
        result = value_analysis(pb.build(), "f")
        assert result.entry_envs["next"].get("r") == flat_const(5)

    def test_memory_reads_are_top(self):
        program = straightline_program(
            [[Load("r", "x", AccessMode.RLX)]], atomics={"x"}
        )
        result = value_analysis(program, "t1")
        envs = result.before_instruction("entry")
        after_load = result.before_terminator("entry")
        assert after_load.get("r") == FLAT_TOP

    def test_join_of_branches(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        f.block("entry").be(binop("==", "c", 0), "a", "b")
        a = f.block("a")
        a.assign("r", 1)
        a.jmp("join")
        b = f.block("b")
        b.assign("r", 2)
        b.jmp("join")
        f.block("join").ret()
        pb.thread("f")
        result = value_analysis(pb.build(), "f")
        assert result.entry_envs["join"].get("r") == FLAT_TOP

    def test_same_constant_on_both_branches_survives(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        f.block("entry").be(binop("==", "c", 0), "a", "b")
        a = f.block("a")
        a.assign("r", 7)
        a.jmp("join")
        b = f.block("b")
        b.assign("r", 7)
        b.jmp("join")
        f.block("join").ret()
        pb.thread("f")
        result = value_analysis(pb.build(), "f")
        assert result.entry_envs["join"].get("r") == flat_const(7)

    def test_loop_increment_reaches_top(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        entry = f.block("entry")
        entry.assign("i", 0)
        entry.jmp("loop")
        loop = f.block("loop")
        loop.be(binop("<", "i", 3), "body", "end")
        body = f.block("body")
        body.assign("i", binop("+", "i", 1))
        body.jmp("loop")
        f.block("end").ret()
        pb.thread("f")
        result = value_analysis(pb.build(), "f")
        assert result.entry_envs["loop"].get("i") == FLAT_TOP

    def test_call_boundary_clobbers(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        entry = f.block("entry")
        entry.assign("r", 5)
        entry.call("g", "after")
        f.block("after").ret()
        pb.function("g").block("entry").ret()
        pb.thread("f")
        result = value_analysis(pb.build(), "f")
        assert result.entry_envs["after"].get("r") == FLAT_TOP
