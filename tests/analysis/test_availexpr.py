"""Availability analysis tests — the acquire-read kill discipline."""


from repro.analysis.availexpr import (
    available_analysis,
    lookup_expr,
    lookup_load,
    transfer_instruction,
)
from repro.lang.builder import ProgramBuilder, binop
from repro.lang.syntax import (
    AccessMode,
    Assign,
    BinOp,
    Cas,
    Const,
    Fence,
    FenceKind,
    Load,
    Reg,
    Store,
)

F0 = frozenset()


def after(instrs, facts=F0):
    for instr in instrs:
        facts = transfer_instruction(instr, facts)
    return facts


class TestTransfer:
    def test_na_load_generates_fact(self):
        facts = after([Load("r", "a", AccessMode.NA)])
        assert ("load", "r", "a") in facts

    def test_redefinition_kills_fact(self):
        facts = after([Load("r", "a", AccessMode.NA), Assign("r", Const(1))])
        assert ("load", "r", "a") not in facts

    def test_acquire_read_kills_all_load_facts(self):
        facts = after(
            [Load("r", "a", AccessMode.NA), Load("s", "x", AccessMode.ACQ)]
        )
        assert not any(f[0] == "load" for f in facts)

    def test_relaxed_read_preserves_load_facts(self):
        facts = after(
            [Load("r", "a", AccessMode.NA), Load("s", "x", AccessMode.RLX)]
        )
        assert ("load", "r", "a") in facts

    def test_release_write_preserves_load_facts(self):
        facts = after(
            [Load("r", "a", AccessMode.NA), Store("x", Const(1), AccessMode.REL)]
        )
        assert ("load", "r", "a") in facts

    def test_own_na_store_kills_that_location_only(self):
        facts = after(
            [
                Load("r", "a", AccessMode.NA),
                Load("s", "b", AccessMode.NA),
                Store("a", Const(1), AccessMode.NA),
            ]
        )
        assert ("load", "r", "a") not in facts
        assert ("load", "s", "b") in facts

    def test_store_of_register_generates_fact(self):
        facts = after([Store("a", Reg("v"), AccessMode.NA)])
        assert ("load", "v", "a") in facts

    def test_acquire_cas_kills(self):
        cas = Cas("r", "x", Const(0), Const(1), AccessMode.ACQ, AccessMode.RLX)
        facts = after([Load("r2", "a", AccessMode.NA), cas])
        assert not any(f[0] == "load" for f in facts)

    def test_relaxed_cas_preserves(self):
        cas = Cas("r", "x", Const(0), Const(1), AccessMode.RLX, AccessMode.RLX)
        facts = after([Load("r2", "a", AccessMode.NA), cas])
        assert ("load", "r2", "a") in facts

    def test_acquire_fence_kills_release_fence_keeps(self):
        base = [Load("r", "a", AccessMode.NA)]
        assert not any(
            f[0] == "load" for f in after(base + [Fence(FenceKind.ACQ)])
        )
        assert ("load", "r", "a") in after(base + [Fence(FenceKind.REL)])

    def test_expr_fact_generated_and_killed(self):
        expr = BinOp("+", Reg("a"), Reg("b"))
        facts = after([Assign("r", expr)])
        assert ("expr", "r", expr) in facts
        facts = after([Assign("r", expr), Assign("a", Const(1))])
        assert ("expr", "r", expr) not in facts  # operand clobbered

    def test_naive_mode_skips_acquire_kill(self):
        facts = F0
        facts = transfer_instruction(Load("r", "a", AccessMode.NA), facts, False)
        facts = transfer_instruction(Load("s", "x", AccessMode.ACQ), facts, False)
        assert ("load", "r", "a") in facts


class TestWholeFunction:
    def test_must_analysis_intersects_at_join(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        f.block("entry").be(binop("==", "c", 0), "then", "else_")
        then = f.block("then")
        then.load("r", "a", "na")
        then.jmp("join")
        els = f.block("else_")
        els.skip()
        els.jmp("join")
        f.block("join").ret()
        pb.thread("f")
        result = available_analysis(pb.build(), "f")
        assert result.entry_facts["join"] == frozenset()  # only one branch loads

    def test_fact_flows_through_both_branches(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        entry = f.block("entry")
        entry.load("r", "a", "na")
        entry.be(binop("==", "c", 0), "then", "else_")
        then = f.block("then")
        then.skip()
        then.jmp("join")
        els = f.block("else_")
        els.skip()
        els.jmp("join")
        f.block("join").ret()
        pb.thread("f")
        result = available_analysis(pb.build(), "f")
        assert ("load", "r", "a") in result.entry_facts["join"]

    def test_loop_fact_survives_clean_body(self):
        """A fact established before a loop holds at the header iff the
        body preserves it — the mechanism behind LICM via CSE."""
        pb = ProgramBuilder()
        f = pb.function("f")
        entry = f.block("entry")
        entry.load("r", "a", "na")
        entry.jmp("loop")
        loop = f.block("loop")
        loop.be(binop("<", "i", 3), "body", "end")
        body = f.block("body")
        body.load("s", "a", "na")
        body.assign("i", binop("+", "i", 1))
        body.jmp("loop")
        f.block("end").ret()
        pb.thread("f")
        result = available_analysis(pb.build(), "f")
        assert ("load", "r", "a") in result.entry_facts["loop"]
        assert ("load", "r", "a") in result.entry_facts["body"]

    def test_loop_fact_killed_by_acquire_in_body(self):
        pb = ProgramBuilder(atomics={"x"})
        f = pb.function("f")
        entry = f.block("entry")
        entry.load("r", "a", "na")
        entry.jmp("loop")
        loop = f.block("loop")
        loop.be(binop("<", "i", 3), "body", "end")
        body = f.block("body")
        body.load("g", "x", "acq")
        body.load("s", "a", "na")
        body.assign("i", binop("+", "i", 1))
        body.jmp("loop")
        f.block("end").ret()
        pb.thread("f")
        result = available_analysis(pb.build(), "f")
        assert ("load", "r", "a") not in result.entry_facts["body"]

    def test_call_clobbers_everything(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        entry = f.block("entry")
        entry.load("r", "a", "na")
        entry.call("g", "after")
        f.block("after").ret()
        g = pb.function("g")
        g.block("entry").ret()
        pb.thread("f")
        result = available_analysis(pb.build(), "f")
        assert result.entry_facts["after"] == frozenset()


class TestLookups:
    def test_lookup_load(self):
        facts = frozenset({("load", "r1", "a"), ("load", "r2", "b")})
        assert lookup_load(facts, "a", exclude="r9") == "r1"
        assert lookup_load(facts, "a", exclude="r1") is None
        assert lookup_load(None, "a", exclude="r9") is None

    def test_lookup_expr(self):
        expr = BinOp("+", Reg("a"), Const(1))
        facts = frozenset({("expr", "r1", expr)})
        assert lookup_expr(facts, expr, exclude="r9") == "r1"
        assert lookup_expr(facts, BinOp("-", Reg("a"), Const(1)), exclude="r9") is None
