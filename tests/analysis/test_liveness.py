"""Liveness analysis tests — especially the release-write barrier."""


from repro.analysis.liveness import LiveSet, liveness_analysis, transfer_instruction
from repro.lang.builder import ProgramBuilder, binop, straightline_program
from repro.lang.syntax import (
    AccessMode,
    Assign,
    BinOp,
    Cas,
    Const,
    Fence,
    FenceKind,
    Load,
    Print,
    Reg,
    Store,
)

ALL_LOCS = frozenset({"a", "b"})


class TestTransfer:
    def test_dead_store_leaves_fact(self):
        live = LiveSet(frozenset(), frozenset())
        instr = Store("a", Reg("r"), AccessMode.NA)
        assert transfer_instruction(instr, live, ALL_LOCS) == live

    def test_live_store_kills_loc_and_uses_regs(self):
        live = LiveSet(frozenset(), frozenset({"a"}))
        instr = Store("a", Reg("r"), AccessMode.NA)
        out = transfer_instruction(instr, live, ALL_LOCS)
        assert out == LiveSet(frozenset({"r"}), frozenset())

    def test_release_write_makes_all_na_locs_live(self):
        live = LiveSet(frozenset(), frozenset())
        instr = Store("x", Const(1), AccessMode.REL)
        out = transfer_instruction(instr, live, ALL_LOCS)
        assert out.locs == ALL_LOCS

    def test_relaxed_write_is_not_a_barrier(self):
        live = LiveSet(frozenset(), frozenset())
        instr = Store("x", Const(1), AccessMode.RLX)
        out = transfer_instruction(instr, live, ALL_LOCS)
        assert out.locs == frozenset()

    def test_acquire_read_is_not_a_barrier(self):
        live = LiveSet(frozenset(), frozenset())
        instr = Load("r", "x", AccessMode.ACQ)
        out = transfer_instruction(instr, live, ALL_LOCS)
        assert out.locs == frozenset()

    def test_release_cas_is_a_barrier(self):
        live = LiveSet(frozenset(), frozenset())
        instr = Cas("r", "x", Const(0), Const(1), AccessMode.RLX, AccessMode.REL)
        out = transfer_instruction(instr, live, ALL_LOCS)
        assert out.locs == ALL_LOCS

    def test_release_fence_is_a_barrier(self):
        live = LiveSet(frozenset(), frozenset())
        out = transfer_instruction(Fence(FenceKind.REL), live, ALL_LOCS)
        assert out.locs == ALL_LOCS
        out = transfer_instruction(Fence(FenceKind.SC), live, ALL_LOCS)
        assert out.locs == ALL_LOCS
        out = transfer_instruction(Fence(FenceKind.ACQ), live, ALL_LOCS)
        assert out.locs == frozenset()

    def test_na_load_makes_loc_live(self):
        live = LiveSet(frozenset({"r"}), frozenset())
        out = transfer_instruction(Load("r", "a", AccessMode.NA), live, ALL_LOCS)
        assert out == LiveSet(frozenset(), frozenset({"a"}))

    def test_dead_load_is_transparent(self):
        live = LiveSet(frozenset(), frozenset())
        out = transfer_instruction(Load("r", "a", AccessMode.NA), live, ALL_LOCS)
        assert out == live

    def test_print_uses_regs(self):
        live = LiveSet(frozenset(), frozenset())
        out = transfer_instruction(Print(BinOp("+", Reg("a"), Reg("b"))), live, ALL_LOCS)
        assert out.regs == frozenset({"a", "b"})


class TestWholeFunction:
    def test_fig15_annotations(self):
        """Reproduce the paper's Fig. 15 blue annotations: y is dead after
        y:=2 only *after* the release write, never before it."""
        pb = ProgramBuilder(atomics={"x"})
        with pb.function("t1") as f:
            b = f.block("entry")
            b.store("y", 2, "na")
            b.store("x", 1, "rel")
            b.store("y", 4, "na")
            b.ret()
        pb.thread("t1")
        program = pb.build()
        result = liveness_analysis(program, "t1")
        facts = result.instruction_facts("entry")
        # After y:=2 (i.e. before the release write): y must be live —
        # the barrier keeps the first write.
        assert "y" in facts[0].locs
        # After the release write: y is dead (y:=4 overwrites, and the
        # function is a pure thread entry so nothing is live at return).
        assert "y" not in facts[1].locs

    def test_call_boundary_conservative(self):
        pb = ProgramBuilder()
        with pb.function("main") as f:
            b = f.block("entry")
            b.store("a", 1, "na")
            b.call("helper", "after")
            after = f.block("after")
            after.ret()
        with pb.function("helper") as f:
            b = f.block("entry")
            b.load("r", "a", "na")
            b.print_("r")
            b.ret()
        pb.thread("main")
        program = pb.build()
        result = liveness_analysis(program, "main")
        facts = result.instruction_facts("entry")
        # a:=1 is followed by a call that may read a — live.
        assert "a" in facts[0].locs

    def test_call_target_return_is_conservative(self):
        pb = ProgramBuilder()
        with pb.function("main") as f:
            b = f.block("entry")
            b.call("helper", "after")
            f.block("after").ret()
        with pb.function("helper") as f:
            b = f.block("entry")
            b.store("a", 1, "na")
            b.ret()
        pb.thread("main")
        program = pb.build()
        result = liveness_analysis(program, "helper")
        facts = result.instruction_facts("entry")
        # helper can be called: at its return everything stays live, so
        # the a-write cannot be considered dead.
        assert "a" in facts[0].locs

    def test_loop_keeps_loop_carried_register_live(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        f.block("entry").assign("i", 0)
        f.block("entry").jmp("loop")
        f.block("loop").be(binop("<", "i", 3), "body", "end")
        body = f.block("body")
        body.assign("i", binop("+", "i", 1))
        body.jmp("loop")
        end = f.block("end")
        end.print_("i")
        end.ret()
        pb.thread("f")
        result = liveness_analysis(pb.build(), "f")
        assert "i" in result.entry_fact("loop").regs

    def test_dead_register_chain(self):
        """r2 := r1 where r2 is unused makes r1 dead too (transitively)."""
        program = straightline_program(
            [[Assign("r1", Const(5)), Assign("r2", Reg("r1"))]]
        )
        result = liveness_analysis(program, "t1")
        facts = result.instruction_facts("entry")
        assert "r2" not in facts[0].regs
        assert "r1" not in result.entry_fact("entry").regs
