"""Flat-lattice laws (property tests) and the Lattice interface."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.lattice import (
    FLAT_BOT,
    FLAT_TOP,
    FlatValue,
    Lattice,
    flat_const,
    flat_join,
)

flat_values = st.one_of(
    st.just(FLAT_BOT),
    st.just(FLAT_TOP),
    st.integers(min_value=-5, max_value=5).map(flat_const),
)


@given(flat_values, flat_values)
def test_join_commutative(a, b):
    assert flat_join(a, b) == flat_join(b, a)


@given(flat_values, flat_values, flat_values)
def test_join_associative(a, b, c):
    assert flat_join(flat_join(a, b), c) == flat_join(a, flat_join(b, c))


@given(flat_values)
def test_join_idempotent(a):
    assert flat_join(a, a) == a


@given(flat_values)
def test_bot_identity_top_absorbing(a):
    assert flat_join(FLAT_BOT, a) == a
    assert flat_join(FLAT_TOP, a) == FLAT_TOP


def test_distinct_constants_join_to_top():
    assert flat_join(flat_const(1), flat_const(2)) == FLAT_TOP


def test_equal_constants_join_to_self():
    assert flat_join(flat_const(3), flat_const(3)) == flat_const(3)


def test_flags():
    assert FLAT_BOT.is_bot and not FLAT_BOT.is_const
    assert FLAT_TOP.is_top
    assert flat_const(0).is_const


def test_lattice_leq_derived_from_join():
    lattice = Lattice(bottom=FLAT_BOT, join=flat_join, eq=lambda a, b: a == b)
    assert lattice.leq(FLAT_BOT, flat_const(1))
    assert lattice.leq(flat_const(1), FLAT_TOP)
    assert not lattice.leq(FLAT_TOP, flat_const(1))
    assert not lattice.leq(flat_const(1), flat_const(2))


def test_const_requires_value():
    import pytest

    with pytest.raises(ValueError):
        FlatValue("const")
    with pytest.raises(ValueError):
        FlatValue("weird")
