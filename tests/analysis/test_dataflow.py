"""Generic solver tests over a toy reaching-labels analysis."""


from repro.analysis.dataflow import BlockAnalysis, solve_backward, solve_forward
from repro.analysis.lattice import Lattice
from repro.lang.builder import ProgramBuilder, binop


def set_lattice():
    return Lattice(bottom=frozenset(), join=lambda a, b: a | b, eq=lambda a, b: a == b)


def diamond():
    pb = ProgramBuilder()
    f = pb.function("f")
    f.block("entry").be(binop("==", "c", 0), "then", "else_")
    then = f.block("then")
    then.skip()
    then.jmp("join")
    els = f.block("else_")
    els.skip()
    els.jmp("join")
    f.block("join").ret()
    pb.thread("f")
    return pb.build().function("f")


def looped():
    pb = ProgramBuilder()
    f = pb.function("f")
    f.block("entry").jmp("loop")
    loop = f.block("loop")
    loop.be(binop("<", "i", 3), "body", "end")
    body = f.block("body")
    body.assign("i", binop("+", "i", 1))
    body.jmp("loop")
    f.block("end").ret()
    pb.thread("f")
    return pb.build().function("f")


def test_forward_reaching_labels_diamond():
    """Toy forward analysis: the set of labels control passed through."""
    heap = diamond()
    analysis = BlockAnalysis(
        lattice=set_lattice(),
        transfer=lambda label, block, fact: fact | {label},
        boundary=frozenset(),
    )
    result = solve_forward(heap, analysis)
    assert result["entry"] == frozenset()
    assert result["then"] == frozenset({"entry"})
    assert result["join"] == frozenset({"entry", "then", "else_"})


def test_forward_fixpoint_in_loop():
    heap = looped()
    analysis = BlockAnalysis(
        lattice=set_lattice(),
        transfer=lambda label, block, fact: fact | {label},
        boundary=frozenset(),
    )
    result = solve_forward(heap, analysis)
    assert result["loop"] == frozenset({"entry", "loop", "body"})
    assert result["end"] == frozenset({"entry", "loop", "body"})


def test_backward_reachable_labels():
    """Toy backward analysis: labels reachable from each block exit."""
    heap = diamond()
    analysis = BlockAnalysis(
        lattice=set_lattice(),
        transfer=lambda label, block, fact: fact | {label},
        boundary=frozenset(),
    )
    result = solve_backward(heap, analysis)
    # exit facts: what is live-out of each block = join of successors' ins
    assert result["join"] == frozenset()
    assert result["then"] == frozenset({"join"})
    assert result["entry"] == frozenset({"then", "else_", "join"})


def test_backward_fixpoint_in_loop():
    heap = looped()
    analysis = BlockAnalysis(
        lattice=set_lattice(),
        transfer=lambda label, block, fact: fact | {label},
        boundary=frozenset(),
    )
    result = solve_backward(heap, analysis)
    assert "loop" in result["body"]
    assert "body" in result["loop"]
    assert "end" in result["loop"]
