"""Loop-invariant load detection tests (LInv's analysis)."""


from repro.analysis.loops import find_invariant_loads, loop_info
from repro.lang.builder import ProgramBuilder, binop


def loop_function(body_builder, atomics=frozenset()):
    """entry → loop ⇄ body → end, with ``body_builder`` filling the body."""
    pb = ProgramBuilder(atomics=atomics)
    f = pb.function("f")
    f.block("entry").jmp("loop")
    loop = f.block("loop")
    loop.be(binop("<", "i", 3), "body", "end")
    body = f.block("body")
    body_builder(body)
    body.assign("i", binop("+", "i", 1))
    body.jmp("loop")
    f.block("end").ret()
    pb.thread("f")
    return pb.build()


def invariants(program, require_profitable=True):
    heap = program.function("f")
    info = loop_info(heap)
    assert len(info.loops) == 1
    return find_invariant_loads(
        heap, info.loops[0], program.atomics, require_profitable
    )


def test_simple_invariant_load_found():
    program = loop_function(lambda b: b.load("r", "a", "na"))
    assert invariants(program) == ("a",)


def test_written_location_not_invariant():
    def body(b):
        b.load("r", "a", "na")
        b.store("a", 1, "na")

    assert invariants(loop_function(body)) == ()


def test_atomic_load_not_hoisted():
    program = loop_function(lambda b: b.load("r", "x", "rlx"), atomics={"x"})
    assert invariants(program) == ()


def test_acquire_read_in_body_blocks_profitable_hoist():
    def body(b):
        b.load("g", "x", "acq")
        b.load("r", "a", "na")

    program = loop_function(body, atomics={"x"})
    assert invariants(program) == ()
    # The naive mode hoists anyway (Fig. 1's unsound transformation).
    assert invariants(program, require_profitable=False) == ("a",)


def test_relaxed_read_in_body_does_not_block():
    def body(b):
        b.load("g", "x", "rlx")
        b.load("r", "a", "na")

    program = loop_function(body, atomics={"x"})
    assert invariants(program) == ("a",)


def test_release_write_in_body_does_not_block():
    """Paper Sec. 7.2: LICM may cross release writes."""

    def body(b):
        b.store("x", 1, "rel")
        b.load("r", "a", "na")

    program = loop_function(body, atomics={"x"})
    assert invariants(program) == ("a",)


def test_acquire_fence_blocks():
    def body(b):
        b.fence("acq")
        b.load("r", "a", "na")

    assert invariants(loop_function(body)) == ()


def test_multiple_invariants_sorted():
    def body(b):
        b.load("r1", "b", "na")
        b.load("r2", "a", "na")

    assert invariants(loop_function(body)) == ("a", "b")


def test_call_in_loop_blocks():
    pb = ProgramBuilder()
    f = pb.function("f")
    f.block("entry").jmp("loop")
    loop = f.block("loop")
    loop.be(binop("<", "i", 3), "body", "end")
    body = f.block("body")
    body.load("r", "a", "na")
    body.call("g", "back")
    back = f.block("back")
    back.assign("i", binop("+", "i", 1))
    back.jmp("loop")
    f.block("end").ret()
    pb.function("g").block("entry").ret()
    pb.thread("f")
    program = pb.build()
    heap = program.function("f")
    info = loop_info(heap)
    loop_obj = info.loops[0]
    assert find_invariant_loads(heap, loop_obj, program.atomics) == ()
