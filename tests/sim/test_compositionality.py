"""Lemma 6.2 (horizontal compositionality), exercised empirically: when
the thread-local simulation holds for each function of a transformation,
*every* ww-RF parallel composition of those functions refines — not just
one program.

We verify two function pairs by simulation once, then check refinement for
several distinct thread compositions of the same code."""

import pytest

from repro.lang.builder import ProgramBuilder
from repro.lang.syntax import Program
from repro.races.wwrf import ww_rf
from repro.sim.invariant import dce_invariant
from repro.sim.refinement import check_refinement
from repro.sim.simulation import check_thread_simulation


def build_code(transformed: bool) -> Program:
    """Two functions; `writer` contains a DCE-able dead store (to its own
    location — compositions stay ww-RF), `mixer` does rel/acq traffic."""
    pb = ProgramBuilder(atomics={"flag"})
    with pb.function("writer") as f:
        b = f.block("entry")
        if transformed:
            b.skip()
        else:
            b.store("a", 1, "na")
        b.store("a", 2, "na")
        b.store("flag", 1, "rel")
        b.ret()
    with pb.function("mixer") as f:
        b = f.block("entry")
        b.load("g", "flag", "acq")
        b.be("g", "hit", "end")
        hit = f.block("hit")
        hit.load("r", "a", "na")
        hit.print_("r")
        hit.jmp("end")
        f.block("end").ret()
    # Threads are attached per composition by `with_threads`.
    pb.thread("writer")
    return pb.build()


def with_threads(program: Program, threads) -> Program:
    return Program(program.functions, program.atomics, tuple(threads))


COMPOSITIONS = [
    ("writer alone", ("writer",)),
    ("writer ∥ mixer", ("writer", "mixer")),
    ("writer ∥ mixer ∥ mixer", ("writer", "mixer", "mixer")),
    ("mixer alone (untouched code)", ("mixer",)),
]


@pytest.fixture(scope="module")
def source():
    return build_code(False)


@pytest.fixture(scope="module")
def target():
    return build_code(True)


def test_thread_local_simulations_hold(source, target):
    """The premise of Lemma 6.2: per-function simulations."""
    for func in ("writer", "mixer"):
        result = check_thread_simulation(source, target, func, dce_invariant())
        assert result.holds, func


@pytest.mark.parametrize("name,threads", COMPOSITIONS, ids=[c[0] for c in COMPOSITIONS])
def test_every_composition_refines(source, target, name, threads):
    """The conclusion: refinement for arbitrary compositions of the same
    functions (here checked exhaustively per composition)."""
    src = with_threads(source, threads)
    tgt = with_threads(target, threads)
    assert ww_rf(src).race_free  # Lemma 6.2's side condition
    result = check_refinement(src, tgt)
    assert result.definitive and result.holds


def test_ww_rf_preserved_in_compositions(source, target):
    """The second conclusion of Lemma 6.2: the target compositions are
    ww-race-free too."""
    for _, threads in COMPOSITIONS:
        tgt = with_threads(target, threads)
        assert ww_rf(tgt).race_free
