"""Thread-local simulation checker tests (paper Def. 6.1, Fig. 14, 16)."""

import pytest

from repro.lang.builder import ProgramBuilder
from repro.sim.invariant import dce_invariant, identity_invariant
from repro.sim.simulation import check_thread_simulation


def single(name="t1", atomics=(), build=lambda b: None):
    pb = ProgramBuilder(atomics=set(atomics))
    f = pb.function(name)
    b = f.block("entry")
    build(b)
    b.ret()
    pb.thread(name)
    return pb.build()


class TestIdentityCases:
    def test_identical_programs_simulate(self):
        def code(b):
            b.store("a", 1, "na")
            b.load("r", "a", "na")
            b.print_("r")

        program = single(build=code)
        result = check_thread_simulation(program, program, "t1", identity_invariant())
        assert result.holds

    def test_reorder_simulates_with_identity_invariant(self):
        """Paper Sec. 2.3 (Reorder) / Fig. 14(d)."""
        src = single(build=lambda b: (b.load("r", "x", "na"), b.store("y", 2, "na"), b.print_("r")))
        tgt = single(build=lambda b: (b.store("y", 2, "na"), b.load("r", "x", "na"), b.print_("r")))
        result = check_thread_simulation(src, tgt, "t1", identity_invariant())
        assert result.holds

    def test_atomic_events_must_match(self):
        """A target performing a different atomic write has no response."""
        src = single(atomics={"x"}, build=lambda b: b.store("x", 1, "rlx"))
        tgt = single(atomics={"x"}, build=lambda b: b.store("x", 2, "rlx"))
        result = check_thread_simulation(src, tgt, "t1", identity_invariant())
        assert not result.holds

    def test_extra_target_output_rejected(self):
        src = single(build=lambda b: None)
        tgt = single(build=lambda b: b.print_(1))
        result = check_thread_simulation(src, tgt, "t1", identity_invariant())
        assert not result.holds

    def test_missing_target_output_rejected(self):
        """Upward simulation also demands the source's outputs appear: the
        source cannot silently complete past a pending print."""
        src = single(build=lambda b: b.print_(1))
        tgt = single(build=lambda b: None)
        result = check_thread_simulation(src, tgt, "t1", identity_invariant())
        assert not result.holds


class TestDceCases:
    def mk(self, eliminated):
        def code(b):
            if eliminated:
                b.skip()
            else:
                b.store("x", 1, "na")
            b.store("x", 2, "na")

        return single(build=code)

    def test_fig16_simulates_with_dce_invariant(self):
        result = check_thread_simulation(
            self.mk(False), self.mk(True), "t1", dce_invariant()
        )
        assert result.holds

    def test_fig16_fails_with_identity_invariant(self):
        """The paper's point in Sec. 8 (comparison with PSSim): DCE needs
        an invariant weaker than I_id — with I_id the source's extra dead
        write breaks memory equality."""
        result = check_thread_simulation(
            self.mk(False), self.mk(True), "t1", identity_invariant()
        )
        assert not result.holds

    def test_dead_write_with_intervening_code(self):
        """The lockstep shape x:=1; c1..cn; x:=2 — the source catches up
        within the delayed-index budget."""

        def source(b):
            b.store("x", 1, "na")
            b.assign("r1", 1)
            b.assign("r2", 2)
            b.store("x", 2, "na")

        def target(b):
            b.skip()
            b.assign("r1", 1)
            b.assign("r2", 2)
            b.store("x", 2, "na")

        result = check_thread_simulation(
            single(build=source), single(build=target), "t1", dce_invariant()
        )
        assert result.holds

    def test_wrong_direction_fails(self):
        """Target writing *more* than the source is not a simulation (the
        delayed write set would require a source write that never comes)."""
        result = check_thread_simulation(
            self.mk(True), self.mk(False), "t1", dce_invariant()
        )
        assert not result.holds


class TestMixedAtomic:
    def test_na_reorder_across_release_write(self):
        """(r := 1; x.rel := r) ; (x.rel := 1) with a constant — the paper's
        example before Fig. 14: source does na steps before the atomic."""
        src = single(
            atomics={"x"},
            build=lambda b: (b.assign("r", 1), b.store("x", "r", "rel")),
        )
        tgt = single(atomics={"x"}, build=lambda b: b.store("x", 1, "rel"))
        result = check_thread_simulation(src, tgt, "t1", identity_invariant())
        assert result.holds

    def test_atomics_set_must_agree(self):
        src = single(atomics={"x"}, build=lambda b: b.store("x", 1, "rlx"))
        tgt = single(build=lambda b: b.store("x", 1, "na"))
        with pytest.raises(ValueError):
            check_thread_simulation(src, tgt, "t1", identity_invariant())
