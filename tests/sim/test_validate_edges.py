"""Edge cases of the translation-validation pipeline."""

import pytest

from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Const, Print, Store
from repro.opt.base import Optimizer, identity_optimizer
from repro.opt.dce import DCE
from repro.sim.validate import validate_optimizer


def test_racy_source_is_vacuously_ok():
    """Def. 6.4 preconditions on ww-RF(P_s): for racy sources the theorem
    says nothing, so validation reports ok regardless."""
    racy = straightline_program(
        [
            [Store("a", Const(1), AccessMode.NA)],
            [Store("a", Const(2), AccessMode.NA)],
        ]
    )
    report = validate_optimizer(DCE(), racy)
    assert not report.source_wwrf.race_free
    assert report.ok  # vacuous
    assert report.target_wwrf is None  # preservation not evaluated


def test_identity_run_reports_unchanged():
    program = straightline_program([[Print(Const(1))]])
    report = validate_optimizer(identity_optimizer(), program)
    assert report.ok and not report.changed
    assert "unchanged" in str(report)


def test_atomics_change_is_rejected_loudly():
    class EvilOptimizer(Optimizer):
        """Deliberately violates the ι-preservation contract."""

        name = "evil"

        def run(self, program):
            from repro.lang.syntax import Program

            return Program(program.functions, frozenset(), program.threads)

        def run_function(self, program, func):
            return program.function(func)

    # With accessed atomics, the AST's own well-formedness check trips
    # first; with a declared-but-unused atomic, validate's contract check
    # is the one that catches it.
    accessed = straightline_program(
        [[Store("x", Const(1), AccessMode.RLX)]], atomics={"x"}
    )
    with pytest.raises(ValueError, match="atomic access"):
        validate_optimizer(EvilOptimizer(), accessed)

    unused = straightline_program([[Print(Const(1))]], atomics={"x"})
    with pytest.raises(AssertionError, match="atomics"):
        validate_optimizer(EvilOptimizer(), unused)


def test_failing_report_renders_failure():
    from repro.opt.unsound import NaiveDCE
    from repro.litmus.library import fig15_program

    report = validate_optimizer(NaiveDCE(), fig15_program(False), check_target_wwrf=False)
    assert not report.ok
    assert "FAIL" in str(report)
