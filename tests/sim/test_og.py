"""Owicki–Gries obligation checker tests (:mod:`repro.sim.og`).

``check_og`` replays the per-program-point invariant annotations (I_id,
I_dce, I_reorder) against the source's dataflow facts and emits one
obligation per rewritten site.  These tests exercise each discharge rule
in isolation: redundant-read, dead-code + interference, expression
equivalence (constants / availability / copies), branch folding, and the
I_reorder permutation rule."""

from repro.lang.builder import ProgramBuilder, binop
from repro.litmus.library import LITMUS_SUITE
from repro.opt import CSE, DCE, ConstProp, CopyProp, Reorder
from repro.opt.unsound import NaiveDCE
from repro.sim import check_og
from repro.static import analyze_ww_races
from repro.static.crossing import CrossingProfile

ID = CrossingProfile(invariant="id")
DCE_PROFILE = DCE.crossing_profile
REORDER_PROFILE = Reorder.crossing_profile


def _program(build_t1, atomics={"f"}, extra_threads=()):
    pb = ProgramBuilder(atomics=set(atomics))
    with pb.function("t1") as f:
        build_t1(f)
    pb.thread("t1")
    for name, build in extra_threads:
        with pb.function(name) as f:
            build(f)
        pb.thread(name)
    return pb.build()


def test_identical_programs_discharge_vacuously():
    for test in LITMUS_SUITE.values():
        report = check_og(test.program, test.program, ID)
        assert report.ok
        assert not report.obligations


def test_gallery_obligations_discharge_on_litmus():
    for opt in (ConstProp(), CSE(), DCE(), CopyProp(), Reorder()):
        profile = opt.crossing_profile
        assert profile is not None
        for test in LITMUS_SUITE.values():
            if not analyze_ww_races(test.program).race_free:
                # Interference freedom is only expected under the ww-RF
                # precondition (the certifier checks it before OG runs).
                continue
            target = opt.run(test.program)
            report = check_og(test.program, target, profile)
            assert report.ok, (opt.name, test.name, report.undischarged)


def test_redundant_read_discharged_by_availability():
    """CSE replaces the second load of `a` with the cached register —
    discharged because the load is *available* (no acquire intervenes)."""

    def src(f):
        b = f.block("entry")
        b.load("r1", "a", "na")
        b.load("r2", "a", "na")
        b.print_("r2")
        b.ret()

    source = _program(src)
    target = CSE().run(source)
    assert target != source
    report = check_og(source, target, CSE.crossing_profile)
    assert report.ok
    assert any(ob.kind == "redundant-read" for ob in report.obligations)


def test_stale_read_across_acquire_is_undischarged():
    """The unsound CSE variant reuses a load across an acquire: the
    availability fact is killed at the acquire, so the obligation must
    stay open."""

    def src(f):
        b = f.block("entry")
        b.load("r1", "a", "na")
        b.load("g", "f", "acq")
        b.load("r2", "a", "na")
        b.print_("r2")
        b.ret()

    source = _program(src)
    target = CSE(acquire_kills=False).run(source)
    assert target != source
    report = check_og(source, target, CSE.crossing_profile)
    assert not report.ok


def test_dead_write_discharged_with_interference_freedom():
    """DCE drops an overwritten na-store; the obligation carries both the
    liveness fact (dead on all paths) and interference freedom (no other
    thread writes the location)."""

    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.store("a", 2, "na")
        b.print_(0)
        b.ret()

    source = _program(src)
    target = DCE().run(source)
    assert target != source
    report = check_og(source, target, DCE_PROFILE)
    assert report.ok
    assert any(ob.kind == "dead-code" for ob in report.obligations)


def test_naive_dce_obligation_stays_open():
    """NaiveDCE claims I_dce but eliminates a *live* store (observable
    through the release flag): the liveness replay refuses to discharge."""
    source = LITMUS_SUITE["Fig15-src"].program
    target = NaiveDCE().run(source)
    assert target != source
    report = check_og(source, target, DCE_PROFILE)
    assert not report.ok
    assert report.undischarged


def test_constant_folding_discharged_by_value_analysis():
    def src(f):
        b = f.block("entry")
        b.assign("r1", 2)
        b.assign("r2", binop("+", "r1", 3))
        b.print_("r2")
        b.ret()

    source = _program(src)
    target = ConstProp().run(source)
    assert target != source
    report = check_og(source, target, ConstProp.crossing_profile)
    assert report.ok
    assert any(ob.kind == "constants" for ob in report.obligations)


def test_branch_folding_discharged():
    def src(f):
        b = f.block("entry")
        b.assign("r", 0)
        b.be("r", "then", "else")
        t = f.block("then")
        t.print_(1)
        t.ret()
        e = f.block("else")
        e.print_(2)
        e.ret()

    source = _program(src)
    target = ConstProp().run(source)
    assert target != source
    report = check_og(source, target, ConstProp.crossing_profile)
    assert report.ok
    assert any(ob.kind == "branch-decided" for ob in report.obligations)


def test_permutation_discharged_under_reorder_profile():
    """An adjacent load/store swap in promise-free-sound direction: the
    I_reorder permutation rule matches the multiset and checks every
    must-preserve pair."""

    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.load("r", "b", "na")
        b.print_("r")
        b.ret()

    source = _program(src)
    target = Reorder().run(source)
    assert target != source
    report = check_og(source, target, REORDER_PROFILE)
    assert report.ok
    assert any(ob.kind == "permutation" for ob in report.obligations)


def test_permutation_refused_without_reorder_profile():
    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.load("r", "b", "na")
        b.print_("r")
        b.ret()

    source = _program(src)
    target = Reorder().run(source)
    assert target != source
    report = check_og(source, target, ID)
    assert not report.ok


def test_cfg_mismatch_is_an_open_obligation():
    def src(f):
        b = f.block("entry")
        b.store("a", 1, "na")
        b.ret()

    def tgt(f):
        b = f.block("entry")
        b.jmp("body")
        c = f.block("body")
        c.store("a", 1, "na")
        c.ret()

    report = check_og(_program(src), _program(tgt), ID)
    assert not report.ok
    assert any(ob.kind == "cfg-mismatch" for ob in report.obligations)


def test_obligation_rendering():
    source = LITMUS_SUITE["Fig16-src"].program
    target = DCE().run(source)
    report = check_og(source, target, DCE_PROFILE)
    assert report.ok
    text = str(report)
    assert "discharged" in text or all(
        "✓" in str(ob) for ob in report.obligations
    )
