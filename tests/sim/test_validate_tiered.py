"""Tiered translation validation tests (:func:`repro.sim.validate_tiered`).

Tier 0 (the static certifier) must short-circuit exploration with a
PROVED verdict that agrees — in behavior-set terms — with what
exhaustive refinement checking would have concluded, and INCONCLUSIVE
must fall through to the exploration tier unchanged."""

import pytest

from repro.litmus.generator import GeneratorConfig
from repro.litmus.library import LITMUS_SUITE
from repro.opt import CSE, DCE, ConstProp, Reorder
from repro.opt.unsound import NaiveDCE
from repro.robust.confidence import Confidence
from repro.sim import validate_corpus, validate_optimizer, validate_tiered

GALLERY = (ConstProp(), CSE(), DCE(), Reorder())


def test_certified_reports_are_static_and_proved():
    report = validate_tiered(DCE(), LITMUS_SUITE["Fig16-src"].program)
    assert report.ok
    assert report.method == "static"
    assert report.confidence is Confidence.PROVED
    assert report.exhaustive
    assert report.behavior_count == 0
    assert report.report is None
    assert report.certificate.certified
    assert "statically certified" in str(report)
    assert report.tiers and report.tiers[0].tier == "static-certify"


def test_inconclusive_falls_through_to_exploration():
    report = validate_tiered(NaiveDCE(), LITMUS_SUITE["Fig15-src"].program)
    assert not report.certificate.certified
    assert report.method == "exploration"
    assert report.report is not None
    assert not report.ok  # NaiveDCE is genuinely unsound on Fig. 15
    assert [t.tier for t in report.tiers] == ["static-certify", "exploration"]
    assert not report.tiers[0].decided and report.tiers[1].decided


def test_tiered_agrees_with_exploration_on_litmus():
    """Behavior-set ground truth over the full litmus suite: the ladder's
    verdict (ok / not ok) must be byte-identical to always-exploration,
    whichever tier decided it."""
    for opt in GALLERY:
        for test in LITMUS_SUITE.values():
            ladder = validate_tiered(opt, test.program)
            exploration = validate_optimizer(opt, test.program)
            assert ladder.ok == exploration.ok, (opt.name, test.name)
            assert ladder.changed == exploration.changed, (opt.name, test.name)


def test_tiered_corpus_counts_static_discharges():
    result = validate_corpus(DCE(), range(10), tiered=True)
    assert result.ok
    assert result.static_discharged == 10
    assert result.static_fraction == 1.0
    assert "statically certified" in str(result)


def test_untiered_corpus_has_zero_static_discharges():
    result = validate_corpus(DCE(), range(4))
    assert result.ok
    assert result.static_discharged == 0


def test_tiered_corpus_parallel_matches_serial():
    serial = validate_corpus(Reorder(), range(6), tiered=True)
    parallel = validate_corpus(Reorder(), range(6), tiered=True, jobs=2)
    assert serial.ok == parallel.ok
    assert serial.static_discharged == parallel.static_discharged


def test_tiered_rejects_iota_change():
    class BadOpt(DCE):
        def run(self, program, strict=None):
            target = super().run(program)
            return type(target)(
                functions=target.functions,
                atomics=target.atomics | {"zzz_new"},
                threads=target.threads,
            )

    with pytest.raises(AssertionError):
        validate_tiered(BadOpt(), LITMUS_SUITE["MP-relacq"].program)


def test_reorder_corpus_with_clusters():
    """Reorderable clusters make the pass actually fire; tier 0 should
    still discharge the bulk statically."""
    config = GeneratorConfig(threads=2, instrs_per_thread=3, reorder_clusters=2)
    result = validate_corpus(Reorder(), range(8), generator_config=config, tiered=True)
    assert result.ok
    assert result.transformed > 0
    assert result.static_fraction >= 0.7
