"""Refinement checker tests."""


from repro.lang.builder import straightline_program
from repro.lang.syntax import Const, Print
from repro.semantics.thread import SemanticsConfig
from repro.sim.refinement import check_equivalence, check_refinement


def prints(*values):
    return straightline_program([[Print(Const(v)) for v in values]])


def test_reflexive():
    program = prints(1, 2)
    result = check_refinement(program, program)
    assert result.holds and result.definitive


def test_fewer_behaviors_refine():
    source = straightline_program([[Print(Const(1))], [Print(Const(2))]])
    target = prints(1, 2)  # one fixed interleaving
    result = check_refinement(source, target)
    assert result.holds


def test_more_behaviors_fail_with_counterexample():
    source = prints(1, 2)
    target = straightline_program([[Print(Const(1))], [Print(Const(2))]])
    result = check_refinement(source, target)
    assert not result.holds
    assert result.counterexample is not None
    assert result.counterexample[0] == 2  # the (2, ...) trace is new


def test_nonpreemptive_refinement():
    program = prints(1)
    result = check_refinement(program, program, nonpreemptive=True)
    assert result.holds


def test_equivalence_pair():
    program = prints(3)
    fwd, bwd = check_equivalence(program, program)
    assert fwd.holds and bwd.holds


def test_bounded_verdict_flagged():
    source = prints(1)
    config = SemanticsConfig(max_states=2)
    result = check_refinement(source, source, config)
    assert not result.definitive


def test_str_rendering():
    result = check_refinement(prints(1), prints(1))
    assert "holds" in str(result)
    bad = check_refinement(prints(1), prints(2))
    assert "FAILS" in str(bad)
