"""Experiment E-FIG1: the paper's Fig. 1 end to end.

Naive LICM across an **acquire** read is unsound (the hoisted read of y can
see the initial value 0, which the release/acquire-synchronized source
never allows); switching the spin read to **relaxed** makes the same
transformation sound.  Checked both with the paper's hand-written
``foo_opt`` and with our actual optimizer pipelines."""

import pytest

from repro.lang.syntax import AccessMode
from repro.litmus.library import fig1_source, fig1_target
from repro.opt.licm import LICM, naive_licm
from repro.semantics.exploration import behaviors
from repro.sim.refinement import check_refinement


class TestHandWritten:
    def test_acq_source_only_prints_one(self):
        outs = behaviors(fig1_source(AccessMode.ACQ)).outputs()
        assert outs == frozenset({(1,)})

    def test_acq_target_can_print_zero(self):
        outs = behaviors(fig1_target(AccessMode.ACQ)).outputs()
        assert (0,) in outs and (1,) in outs

    def test_acq_refinement_fails(self):
        result = check_refinement(fig1_source(AccessMode.ACQ), fig1_target(AccessMode.ACQ))
        assert result.definitive and not result.holds

    def test_rlx_source_prints_zero_and_one(self):
        outs = behaviors(fig1_source(AccessMode.RLX)).outputs()
        assert (0,) in outs and (1,) in outs

    def test_rlx_refinement_holds(self):
        result = check_refinement(fig1_source(AccessMode.RLX), fig1_target(AccessMode.RLX))
        assert result.definitive and result.holds

    @pytest.mark.parametrize("iterations", [1, 2])
    def test_result_stable_across_loop_bounds(self, iterations):
        acq = check_refinement(
            fig1_source(AccessMode.ACQ, iterations), fig1_target(AccessMode.ACQ, iterations)
        )
        rlx = check_refinement(
            fig1_source(AccessMode.RLX, iterations), fig1_target(AccessMode.RLX, iterations)
        )
        assert not acq.holds and rlx.holds


class TestThroughOptimizer:
    def test_verified_licm_refuses_acq(self):
        src = fig1_source(AccessMode.ACQ)
        assert LICM().run(src) == src

    def test_verified_licm_transforms_rlx_soundly(self):
        src = fig1_source(AccessMode.RLX)
        out = LICM().run(src)
        assert out != src
        assert check_refinement(src, out).holds

    def test_naive_licm_reproduces_paper_counterexample(self):
        src = fig1_source(AccessMode.ACQ)
        out = naive_licm().run(src)
        result = check_refinement(src, out)
        assert not result.holds
        # The counterexample is precisely the forbidden print of 0.
        assert 0 in result.counterexample
