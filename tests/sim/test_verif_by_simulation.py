"""Executable ``Verif(Opt)`` (paper Def. 6.3): the optimizers carry a
thread-local simulation with their designated invariants — ``I_id`` for
ConstProp and CSE, ``I_dce`` for DCE (paper Sec. 6.1, 7.1, and the PSSim
comparison in Sec. 8)."""


from repro.lang.builder import ProgramBuilder, straightline_program
from repro.lang.syntax import (
    AccessMode,
    Assign,
    BinOp,
    Const,
    Load,
    Print,
    Reg,
    Store,
)
from repro.opt.constprop import ConstProp
from repro.opt.cse import CSE
from repro.opt.dce import DCE
from repro.sim.invariant import dce_invariant, identity_invariant
from repro.sim.validate import verify_optimizer_by_simulation


def all_hold(results) -> bool:
    return all(r.holds for r in results.values())


class TestVerifConstProp:
    def test_straightline_folding(self):
        program = straightline_program(
            [
                [
                    Assign("r", Const(2)),
                    Assign("s", BinOp("*", Reg("r"), Const(3))),
                    Store("a", Reg("s"), AccessMode.NA),
                    Print(Reg("s")),
                ]
            ]
        )
        results = verify_optimizer_by_simulation(ConstProp(), program, identity_invariant())
        assert all_hold(results)

    def test_with_atomic_accesses(self):
        program = straightline_program(
            [
                [
                    Assign("r", Const(1)),
                    Store("x", Reg("r"), AccessMode.REL),
                    Load("s", "x", AccessMode.ACQ),
                    Print(Reg("r")),
                ]
            ],
            atomics={"x"},
        )
        results = verify_optimizer_by_simulation(ConstProp(), program, identity_invariant())
        assert all_hold(results)


class TestVerifCSE:
    def test_redundant_read_elimination(self):
        program = straightline_program(
            [
                [
                    Load("r1", "a", AccessMode.NA),
                    Load("r2", "a", AccessMode.NA),
                    Print(Reg("r2")),
                ]
            ]
        )
        results = verify_optimizer_by_simulation(CSE(), program, identity_invariant())
        assert all_hold(results)

    def test_cse_across_release_write(self):
        program = straightline_program(
            [
                [
                    Load("r1", "a", AccessMode.NA),
                    Store("x", Const(1), AccessMode.REL),
                    Load("r2", "a", AccessMode.NA),
                    Print(Reg("r2")),
                ]
            ],
            atomics={"x"},
        )
        results = verify_optimizer_by_simulation(CSE(), program, identity_invariant())
        assert all_hold(results)


class TestVerifDCE:
    def test_dead_store_with_idce(self):
        program = straightline_program(
            [
                [
                    Store("a", Const(1), AccessMode.NA),
                    Store("a", Const(2), AccessMode.NA),
                ]
            ]
        )
        results = verify_optimizer_by_simulation(DCE(), program, dce_invariant())
        assert all_hold(results)

    def test_dead_store_fails_with_iid(self):
        """The invariant genuinely matters: the same DCE run has no
        simulation under I_id (paper Sec. 8)."""
        program = straightline_program(
            [
                [
                    Store("a", Const(1), AccessMode.NA),
                    Store("a", Const(2), AccessMode.NA),
                ]
            ]
        )
        results = verify_optimizer_by_simulation(DCE(), program, identity_invariant())
        assert not all_hold(results)

    def test_dead_register_code_with_idce(self):
        program = straightline_program(
            [
                [
                    Assign("dead", Const(9)),
                    Store("a", Const(1), AccessMode.NA),
                    Print(Const(0)),
                ]
            ]
        )
        results = verify_optimizer_by_simulation(DCE(), program, dce_invariant())
        assert all_hold(results)


def test_identity_transformation_always_verifies():
    from repro.opt.base import identity_optimizer

    program = straightline_program(
        [[Store("a", Const(1), AccessMode.NA), Print(Const(1))]]
    )
    results = verify_optimizer_by_simulation(
        identity_optimizer(), program, identity_invariant()
    )
    assert all_hold(results)


def test_multiple_thread_functions_all_checked():
    pb = ProgramBuilder()
    for name in ("f", "g"):
        fb = pb.function(name)
        b = fb.block("entry")
        b.assign("r", 1)
        b.print_("r")
        b.ret()
        pb.thread(name)
    program = pb.build()
    results = verify_optimizer_by_simulation(ConstProp(), program, identity_invariant())
    assert set(results) == {"f", "g"}
    assert all_hold(results)
