"""Delayed write set tests (paper Fig. 13)."""

import pytest

from repro.memory.timestamps import ts
from repro.sim.delayed import DelayedWriteSet


def test_empty():
    d = DelayedWriteSet()
    assert d.empty
    assert len(d) == 0


def test_add_and_items():
    d = DelayedWriteSet().add("x", ts(1), 3)
    assert not d.empty
    assert d.items() == frozenset({("x", ts(1))})


def test_duplicate_add_rejected():
    d = DelayedWriteSet().add("x", ts(1), 3)
    with pytest.raises(ValueError):
        d.add("x", ts(1), 5)


def test_discharge_exact():
    d = DelayedWriteSet().add("x", ts(1), 3).add("x", ts(2), 3)
    d2 = d.discharge("x", ts(2))
    assert d2.items() == frozenset({("x", ts(1))})


def test_discharge_oldest_first():
    d = DelayedWriteSet().add("x", ts(2), 3).add("x", ts(1), 3)
    d2 = d.discharge("x")
    assert d2.items() == frozenset({("x", ts(2))})


def test_discharge_missing_is_noop():
    d = DelayedWriteSet().add("x", ts(1), 3)
    assert d.discharge("y") == d
    assert d.discharge("x", ts(9)) == d


def test_decrement_strictly_decreases():
    d = DelayedWriteSet().add("x", ts(1), 2)
    d2 = d.decrement()
    assert d2 is not None
    assert dict(d2.entries)[("x", ts(1))] == 1


def test_decrement_well_foundedness():
    """After the index hits zero the next decrement fails — the source ran
    out of time to catch up (D' < D is well-founded)."""
    d = DelayedWriteSet().add("x", ts(1), 1)
    d = d.decrement()
    assert d is not None
    assert d.decrement() is None


def test_decrement_empty_ok():
    assert DelayedWriteSet().decrement() == DelayedWriteSet()


def test_str_rendering():
    d = DelayedWriteSet().add("x", ts(1), 3)
    assert "x" in str(d)
