"""Environment-perturbation mode of the simulation checker: the Rely of
paper Fig. 2(b), realized as I-preserving injected writes at switch
points."""


from repro.lang.builder import ProgramBuilder
from repro.sim.invariant import dce_invariant, identity_invariant
from repro.sim.simulation import SimCheckConfig, check_thread_simulation

ENV = SimCheckConfig(env_write_budget=2, env_values=(1,))


def single(build):
    pb = ProgramBuilder()
    f = pb.function("t1")
    b = f.block("entry")
    build(b)
    b.ret()
    pb.thread("t1")
    return pb.build()


def test_reorder_survives_interference():
    """(Reorder) is sound for arbitrary racy programs (paper Sec. 2.3) —
    in particular it must survive environment writes to x and y."""
    src = single(lambda b: (b.load("r", "x", "na"), b.store("y", 2, "na"), b.print_("r")))
    tgt = single(lambda b: (b.store("y", 2, "na"), b.load("r", "x", "na"), b.print_("r")))
    result = check_thread_simulation(src, tgt, "t1", identity_invariant(), check_config=ENV)
    assert result.holds


def test_dce_survives_interference():
    src = single(lambda b: (b.store("x", 1, "na"), b.store("x", 2, "na")))
    tgt = single(lambda b: (b.skip(), b.store("x", 2, "na")))
    result = check_thread_simulation(src, tgt, "t1", dce_invariant(), check_config=ENV)
    assert result.holds


def test_redundant_read_elimination_survives_interference():
    """Even when the environment writes x between the two reads, the source
    may keep reading the old message (na floors don't rise), matching the
    target's cached register — the paper's Sec. 2.5 argument."""
    src = single(
        lambda b: (b.load("r1", "a", "na"), b.load("r2", "a", "na"), b.print_("r2"))
    )
    tgt = single(
        lambda b: (b.load("r1", "a", "na"), b.assign("r2", "r1"), b.print_("r2"))
    )
    result = check_thread_simulation(src, tgt, "t1", identity_invariant(), check_config=ENV)
    assert result.holds


def test_value_divergence_under_interference_fails():
    """A transformation that prints a value the source may be *unable* to
    reproduce once the environment has moved its view: target reads twice
    and the source prints a constant — after an env write the target can
    read the new value, which the constant-printing source cannot emit."""
    src = single(lambda b: b.print_(0))
    tgt = single(lambda b: (b.load("r", "x", "na"), b.print_("r")))
    result = check_thread_simulation(src, tgt, "t1", identity_invariant(), check_config=ENV)
    assert not result.holds


def test_budget_bounds_state_space():
    src = single(lambda b: (b.load("r", "x", "na"), b.print_("r")))
    small = check_thread_simulation(
        src, src, "t1", identity_invariant(), check_config=SimCheckConfig(env_write_budget=1)
    )
    large = check_thread_simulation(
        src, src, "t1", identity_invariant(), check_config=SimCheckConfig(env_write_budget=3)
    )
    assert small.holds and large.holds
    assert small.states_explored < large.states_explored


def test_closed_mode_unchanged_by_default():
    src = single(lambda b: b.print_(0))
    result = check_thread_simulation(src, src, "t1", identity_invariant())
    assert result.holds
