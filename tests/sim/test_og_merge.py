"""Owicki–Gries obligations of the merge family (I_merge / I_unused).

Each discharge rule in isolation: the merge-explained structural
obligations (merge-rar / merge-forward / merge-waw / merge-fence), the
stored-value ``store-forward`` rule for non-adjacent plain forwarding,
and the ``unused-read`` + ``interference`` pair — plus every refusal
(forwarding across an acquire, dropping an atomic read, dropping a read
of an environment-written location)."""

from repro.lang.builder import ProgramBuilder
from repro.opt import Merge, UnusedRead
from repro.sim import check_og

MERGE_PROFILE = Merge.crossing_profile
UNUSED_PROFILE = UnusedRead.crossing_profile


def _program(build_t1, atomics={"x"}, extra_threads=()):
    pb = ProgramBuilder(atomics=set(atomics))
    with pb.function("t1") as f:
        build_t1(f)
    pb.thread("t1")
    for name, build in extra_threads:
        with pb.function(name) as f:
            build(f)
        pb.thread(name)
    return pb.build()


def _pair(build_src, build_tgt, **kwargs):
    return _program(build_src, **kwargs), _program(build_tgt, **kwargs)


def _kinds(report):
    return {ob.kind for ob in report.obligations}


class TestStructuralMergeObligations:
    def test_rar_discharged(self):
        def src(f):
            b = f.block("entry")
            b.load("r1", "x", "rlx")
            b.load("r2", "x", "rlx")
            b.print_("r2")
            b.ret()

        source = _program(src)
        target = Merge().run(source)
        assert target != source
        report = check_og(source, target, MERGE_PROFILE)
        assert report.ok, report.undischarged
        assert "merge-rar" in _kinds(report)

    def test_forward_discharged(self):
        def src(f):
            b = f.block("entry")
            b.store("x", 1, "rlx")
            b.load("r1", "x", "rlx")
            b.print_("r1")
            b.ret()

        source = _program(src)
        target = Merge().run(source)
        assert target != source
        report = check_og(source, target, MERGE_PROFILE)
        assert report.ok, report.undischarged
        assert "merge-forward" in _kinds(report)

    def test_waw_discharged(self):
        def src(f):
            b = f.block("entry")
            b.store("a", 1, "na")
            b.store("a", 2, "na")
            b.print_(0)
            b.ret()

        source = _program(src)
        target = Merge().run(source)
        assert target != source
        report = check_og(source, target, MERGE_PROFILE)
        assert report.ok, report.undischarged
        assert "merge-waw" in _kinds(report)

    def test_fence_discharged(self):
        def src(f):
            b = f.block("entry")
            b.fence("rel")
            b.fence("rel")
            b.print_(0)
            b.ret()

        source = _program(src)
        target = Merge().run(source)
        assert target != source
        report = check_og(source, target, MERGE_PROFILE)
        assert report.ok, report.undischarged
        assert "merge-fence" in _kinds(report)

    def test_unexplained_waw_drop_stays_open(self):
        """A hand-built non-adjacent overwrite elimination: no adjacent
        pair explains it and the merge profile declares no write
        elimination, so the obligation cannot discharge."""

        def src(f):
            b = f.block("entry")
            b.store("a", 1, "na")
            b.store("b", 9, "na")
            b.store("a", 2, "na")
            b.ret()

        def tgt(f):
            b = f.block("entry")
            b.skip()
            b.store("b", 9, "na")
            b.store("a", 2, "na")
            b.ret()

        source, target = _pair(src, tgt)
        report = check_og(source, target, MERGE_PROFILE)
        assert not report.ok


class TestStoreForwardObligation:
    def test_nonadjacent_forwarding_discharged(self):
        def src(f):
            b = f.block("entry")
            b.store("a", 5, "na")
            b.store("x", 1, "rlx")
            b.load("r1", "a", "na")
            b.print_("r1")
            b.ret()

        source = _program(src)
        target = Merge().run(source)
        assert target != source
        report = check_og(source, target, MERGE_PROFILE)
        assert report.ok, report.undischarged
        assert "store-forward" in _kinds(report)

    def test_forwarding_across_acquire_stays_open(self):
        """Hand-built forwarding across an acquire: the stored-value fact
        is killed (the view join may expose a newer message), so the
        obligation must not discharge."""

        def src(f):
            b = f.block("entry")
            b.store("a", 5, "na")
            b.load("g", "x", "acq")
            b.load("r1", "a", "na")
            b.print_("r1")
            b.ret()

        def tgt(f):
            b = f.block("entry")
            b.store("a", 5, "na")
            b.load("g", "x", "acq")
            b.assign("r1", 5)
            b.print_("r1")
            b.ret()

        source, target = _pair(src, tgt)
        report = check_og(source, target, MERGE_PROFILE)
        assert not report.ok
        assert any(ob.kind == "store-forward" for ob in report.undischarged)


class TestUnusedReadObligations:
    def test_deadness_and_interference_discharged(self):
        def src(f):
            b = f.block("entry")
            b.load("u", "a", "na")
            b.assign("r1", 1)
            b.print_("r1")
            b.ret()

        source = _program(src)
        target = UnusedRead().run(source)
        assert target != source
        report = check_og(source, target, UNUSED_PROFILE)
        assert report.ok, report.undischarged
        kinds = _kinds(report)
        assert "unused-read" in kinds
        assert "interference" in kinds

    def test_live_read_drop_stays_open(self):
        def src(f):
            b = f.block("entry")
            b.load("r1", "a", "na")
            b.print_("r1")
            b.ret()

        def tgt(f):
            b = f.block("entry")
            b.skip()
            b.print_("r1")
            b.ret()

        source, target = _pair(src, tgt)
        report = check_og(source, target, UNUSED_PROFILE)
        assert not report.ok
        assert any(ob.kind == "unused-read" for ob in report.undischarged)

    def test_relaxed_read_drop_refused_even_when_dead(self):
        def src(f):
            b = f.block("entry")
            b.load("u", "x", "rlx")
            b.print_(0)
            b.ret()

        def tgt(f):
            b = f.block("entry")
            b.skip()
            b.print_(0)
            b.ret()

        source, target = _pair(src, tgt)
        report = check_og(source, target, UNUSED_PROFILE)
        assert not report.ok
        assert any(ob.kind == "unused-read" for ob in report.undischarged)

    def test_interference_refusal_on_environment_written_location(self):
        def src(f):
            b = f.block("entry")
            b.load("u", "a", "na")
            b.print_(0)
            b.ret()

        def tgt(f):
            b = f.block("entry")
            b.skip()
            b.print_(0)
            b.ret()

        def writer(f):
            b = f.block("entry")
            b.store("a", 2, "na")
            b.ret()

        extra = (("t2", writer),)
        source, target = _pair(src, tgt, extra_threads=extra)
        report = check_og(source, target, UNUSED_PROFILE)
        assert not report.ok
        assert any(ob.kind == "interference" for ob in report.undischarged)

    def test_unused_profile_does_not_license_merges(self):
        """A structural merge under the unused-read profile stays open —
        the obligation families are independent."""

        def src(f):
            b = f.block("entry")
            b.store("a", 1, "na")
            b.store("a", 2, "na")
            b.print_(0)
            b.ret()

        source = _program(src)
        target = Merge().run(source)
        assert target != source
        report = check_og(source, target, UNUSED_PROFILE)
        assert not report.ok
