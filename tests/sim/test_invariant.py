"""Invariant instance tests: I_id, I_dce, wf(I, ι) (paper Sec. 6.1, 7.1)."""


from repro.lang.values import Int32
from repro.memory.memory import Memory
from repro.memory.message import Message
from repro.memory.timestamps import ts
from repro.sim.invariant import dce_invariant, identity_invariant, wf_check
from repro.sim.tmap import initial_tmap

NO_ATOMICS = frozenset()


def msg(var, value, frm, to):
    return Message(var, Int32(value), ts(frm), ts(to))


class TestIdentityInvariant:
    def test_holds_initially(self):
        mem = Memory.initial(["x"])
        assert identity_invariant()(initial_tmap(["x"]), mem, mem, NO_ATOMICS)

    def test_holds_on_equal_memories_identity_phi(self):
        mem = Memory.initial(["x"]).add(msg("x", 1, 0, 1))
        phi = initial_tmap(["x"]).set("x", ts(1), ts(1))
        assert identity_invariant()(phi, mem, mem, NO_ATOMICS)

    def test_fails_on_different_memories(self):
        mem_t = Memory.initial(["x"])
        mem_s = mem_t.add(msg("x", 1, 0, 1))
        assert not identity_invariant()(initial_tmap(["x"]), mem_t, mem_s, NO_ATOMICS)

    def test_fails_on_non_identity_phi(self):
        mem = Memory.initial(["x"]).add(msg("x", 1, 0, 1))
        phi = initial_tmap(["x"]).set("x", ts(1), ts(2))
        assert not identity_invariant()(phi, mem, mem, NO_ATOMICS)

    def test_wf(self):
        assert wf_check(identity_invariant(), NO_ATOMICS, ["x", "y"])


class TestDceInvariant:
    def test_holds_initially(self):
        mem = Memory.initial(["x"])
        assert dce_invariant()(initial_tmap(["x"]), mem, mem, NO_ATOMICS)

    def test_requires_gap_below_related_message(self):
        """Target wrote x=2 at (0,1]; source has it at (3, 4] with the
        free interval (2, 3] below — I_dce holds."""
        mem_t = Memory.initial(["x"]).add(msg("x", 2, 0, 1))
        mem_s = (
            Memory.initial(["x"])
            .add(msg("x", 1, 0, 2))
            .add(Message("x", Int32(2), ts(3), ts(4)))
        )
        phi = initial_tmap(["x"]).set("x", ts(1), ts(4))
        assert dce_invariant()(phi, mem_t, mem_s, NO_ATOMICS)

    def test_fails_without_gap(self):
        """Same shape but the source messages are adjacent: no room for a
        future dead write below the related message — I_dce fails."""
        mem_t = Memory.initial(["x"]).add(msg("x", 2, 0, 1))
        mem_s = Memory.initial(["x"]).add(msg("x", 1, 0, 1)).add(msg("x", 2, 1, 2))
        phi = initial_tmap(["x"]).set("x", ts(1), ts(2))
        assert not dce_invariant()(phi, mem_t, mem_s, NO_ATOMICS)

    def test_fails_on_value_mismatch(self):
        mem_t = Memory.initial(["x"]).add(msg("x", 2, 0, 1))
        mem_s = Memory.initial(["x"]).add(Message("x", Int32(3), ts(1), ts(2)))
        phi = initial_tmap(["x"]).set("x", ts(1), ts(2))
        assert not dce_invariant()(phi, mem_t, mem_s, NO_ATOMICS)

    def test_atomic_locations_must_map_identically(self):
        atomics = frozenset({"x"})
        mem_t = Memory.initial(["x"]).add(msg("x", 1, 0, 1))
        mem_s = Memory.initial(["x"]).add(Message("x", Int32(1), ts(1), ts(2)))
        phi = initial_tmap(["x"]).set("x", ts(1), ts(2))
        assert not dce_invariant()(phi, mem_t, mem_s, atomics)

    def test_wf(self):
        assert wf_check(dce_invariant(), NO_ATOMICS, ["x", "y"])


class TestWfCheck:
    def test_wf_rejects_invariant_violating_phi_conditions(self):
        """An invariant that accepts ill-formed φ fails the sample check."""
        from repro.sim.invariant import Invariant

        sloppy = Invariant("sloppy", lambda phi, mt, ms, atomics: True)
        mem = Memory.initial(["x"]).add(msg("x", 1, 0, 1))
        bad_phi = initial_tmap(["x"])  # misses the new message
        assert not wf_check(sloppy, NO_ATOMICS, ["x"], samples=[(bad_phi, mem, mem)])

    def test_wf_rejects_invariant_failing_initially(self):
        from repro.sim.invariant import Invariant

        never = Invariant("never", lambda phi, mt, ms, atomics: False)
        assert not wf_check(never, NO_ATOMICS, ["x"])
