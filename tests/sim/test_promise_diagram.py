"""Fig. 14(c): the promise diagram of the simulation checker — a target
promise must be answered by a corresponding source promise, with I
re-established at both switch points."""


from repro.lang.builder import ProgramBuilder
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig
from repro.sim.invariant import dce_invariant, identity_invariant
from repro.sim.simulation import check_thread_simulation

ORACLE = SemanticsConfig(promise_oracle=SyntacticPromises(budget=1, max_outstanding=1))


def single(build, atomics=()):
    pb = ProgramBuilder(atomics=set(atomics))
    f = pb.function("t1")
    b = f.block("entry")
    build(b)
    b.ret()
    pb.thread("t1")
    return pb.build()


def test_identical_promising_programs_simulate():
    """Target promises x := 1; source answers with the same promise at the
    same placement (I_id forces identical memories at the switch point)."""
    program = single(lambda b: b.store("x", 1, "na"))
    result = check_thread_simulation(
        program, program, "t1", identity_invariant(), sem_config=ORACLE
    )
    assert result.holds


def test_promise_then_fulfill_across_na_block():
    """The NP idiom: promise before the block, fulfill inside it."""
    def code(b):
        b.store("a", 1, "na")
        b.store("b", 2, "na")

    program = single(code)
    config = SemanticsConfig(
        promise_oracle=SyntacticPromises(budget=2, max_outstanding=2)
    )
    result = check_thread_simulation(
        program, program, "t1", identity_invariant(), sem_config=config
    )
    assert result.holds


def test_source_cannot_match_foreign_promise():
    """If the target can promise a write the source has no counterpart
    for, the promise diagram has no response: no simulation."""
    src = single(lambda b: b.store("y", 9, "na"))
    tgt = single(lambda b: (b.store("y", 9, "na"), b.store("x", 1, "na")))
    result = check_thread_simulation(
        src, tgt, "t1", identity_invariant(), sem_config=ORACLE
    )
    # The target's promise of (x, 1) — or its later write — can never be
    # answered; either way the simulation fails.
    assert not result.holds


def test_dce_simulation_with_promises_enabled():
    """The DCE pair still simulates under I_dce when the promise diagram
    is in play."""
    def mk(eliminated):
        def code(b):
            if eliminated:
                b.skip()
            else:
                b.store("x", 1, "na")
            b.store("x", 2, "na")

        return single(code)

    result = check_thread_simulation(
        mk(False), mk(True), "t1", dce_invariant(), sem_config=ORACLE
    )
    assert result.holds


def test_reorder_simulation_with_promises_enabled():
    """Fig. 14(d) composed with Fig. 14(c): the reorder pair where the
    target may promise the y-write before performing it."""
    def mk(reordered):
        def code(b):
            if reordered:
                b.store("y", 2, "na")
                b.load("r", "x", "na")
            else:
                b.load("r", "x", "na")
                b.store("y", 2, "na")
            b.print_("r")

        return single(code)

    result = check_thread_simulation(
        mk(False), mk(True), "t1", identity_invariant(), sem_config=ORACLE
    )
    assert result.holds
