"""Timestamp mapping tests (paper Fig. 12)."""


from repro.lang.values import Int32
from repro.memory.memory import Memory
from repro.memory.message import Message
from repro.memory.timestamps import ts
from repro.sim.tmap import (
    TimestampMapping,
    initial_tmap,
    message_keys,
    wf_tmap,
)


def msg(var, value, frm, to):
    return Message(var, Int32(value), ts(frm), ts(to))


class TestMapping:
    def test_initial_maps_zeros(self):
        phi = initial_tmap(["x", "y"])
        assert phi.get("x", ts(0)) == 0
        assert phi.get("y", ts(0)) == 0
        assert phi.get("z", ts(0)) is None

    def test_set_and_get(self):
        phi = TimestampMapping().set("x", ts(1), ts(2))
        assert phi.get("x", ts(1)) == 2

    def test_domain_and_image(self):
        phi = TimestampMapping().set("x", ts(1), ts(2)).set("y", ts(1), ts(1))
        assert phi.domain() == frozenset({("x", ts(1)), ("y", ts(1))})
        assert phi.image() == frozenset({("x", ts(2)), ("y", ts(1))})


class TestMonotonicity:
    def test_monotone(self):
        phi = TimestampMapping().set("x", ts(1), ts(1)).set("x", ts(2), ts(3))
        assert phi.monotone()

    def test_order_inversion_detected(self):
        phi = TimestampMapping().set("x", ts(1), ts(3)).set("x", ts(2), ts(1))
        assert not phi.monotone()

    def test_collapse_detected(self):
        phi = TimestampMapping().set("x", ts(1), ts(2)).set("x", ts(2), ts(2))
        assert not phi.monotone()

    def test_per_location_independence(self):
        phi = TimestampMapping().set("x", ts(1), ts(5)).set("y", ts(2), ts(1))
        assert phi.monotone()


class TestWellFormedness:
    def test_wf_on_identical_memories(self):
        mem = Memory.initial(["x"]).add(msg("x", 1, 0, 1))
        phi = initial_tmap(["x"]).set("x", ts(1), ts(1))
        assert wf_tmap(phi, mem, mem)

    def test_wf_fails_on_unmapped_target_message(self):
        mem = Memory.initial(["x"]).add(msg("x", 1, 0, 1))
        phi = initial_tmap(["x"])
        assert not wf_tmap(phi, mem, mem)

    def test_wf_fails_on_image_outside_source(self):
        mem_t = Memory.initial(["x"]).add(msg("x", 1, 0, 1))
        mem_s = Memory.initial(["x"])
        phi = initial_tmap(["x"]).set("x", ts(1), ts(1))
        assert not wf_tmap(phi, mem_t, mem_s)

    def test_source_may_have_extra_messages(self):
        """φ(M_t) ⊆ ⌊M_s⌋ is an inclusion: dead writes exist only in M_s."""
        mem_t = Memory.initial(["x"]).add(msg("x", 2, 1, 2))
        mem_s = Memory.initial(["x"]).add(msg("x", 1, 0, 1)).add(msg("x", 2, 1, 2))
        phi = initial_tmap(["x"]).set("x", ts(2), ts(2))
        assert wf_tmap(phi, mem_t, mem_s)

    def test_message_keys_skips_reservations(self):
        from repro.memory.message import Reservation

        mem = Memory.initial(["x"]).add(Reservation("x", ts(0), ts(1)))
        assert message_keys(mem) == frozenset({("x", ts(0))})
