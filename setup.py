"""Legacy setup shim: the sandbox has no `wheel` package, so PEP 660
editable installs fail; `setup.py develop` works without it."""

from setuptools import setup

setup()
