#!/usr/bin/env python3
"""Peterson's lock under PS2.1 — a cautionary tale, verified exhaustively.

Peterson's algorithm is the textbook mutual-exclusion lock that is correct
under sequential consistency.  The paper's language fragment (like PS2.1's
presentation) supports all of C11 concurrency *except consume reads and SC
accesses* — and Peterson turns out to be unimplementable in that fragment:

* under the **SC baseline** the algorithm works (the CAS canary below
  never fails);
* under **PS2.1 with rel/acq accesses**, the store-buffering pattern on
  the flags lets both threads enter;
* adding the textbook **SC fence** between the flag store and the flag
  load is *still* not enough: the two `turn` stores both precede their
  threads' fences, so the fences impose no modification-order constraint
  between them — one thread can read the *other's* stale `turn` giveaway
  and enter concurrently.  (The standard fix is seq_cst *accesses* on
  `turn`, which this fragment deliberately omits.)

Two independent detectors agree:

1. a **CAS canary** in the critical section — a failed CAS means two
   threads were in the CS at the same wall-clock time;
2. the paper's **write-write race detector** (Fig. 11) on a non-atomic
   counter in the CS.

The constructive takeaway: in this fragment, locks are built from CAS
(see examples/spinlock.py), not from Peterson-style flag protocols.

Run:  python examples/peterson.py
"""

from repro import behaviors, lower_program, parse_csimp, ww_rf
from repro.semantics.sc import sc_behaviors

PETERSON = """
atomics flag0, flag1, turn, incs;

fn t0() {{
    flag0.rel = 1;
    turn.rel = 1;
    {fence}
    while ((flag1.acq == 1) * (turn.acq == 1));
    q0 = cas.rlx.rlx(incs, 0, 1);
    print(q0);
    c.na = c.na + 1;
    incs.rlx = 0;
    flag0.rel = 0;
}}

fn t1() {{
    flag1.rel = 1;
    turn.rel = 0;
    {fence}
    while ((flag0.acq == 1) * (turn.acq == 0));
    q1 = cas.rlx.rlx(incs, 0, 1);
    print(q1);
    c.na = c.na + 1;
    incs.rlx = 0;
    flag1.rel = 0;
}}

threads t0, t1;
"""


def build(fence: str):
    return lower_program(parse_csimp(PETERSON.format(fence=fence)))


def main() -> None:
    print("Peterson's lock, CAS-canary in the critical section")
    print("(an output containing 0 = two threads in the CS at once)")
    print()

    sc = sc_behaviors(build(""))
    sc_violations = any(0 in outcome for outcome in sc.outputs())
    print(f"SC baseline          : ME violated = {sc_violations} "
          f"({sc.state_count} states)")

    for fence, label in (("", "PS2.1, rel/acq only "), ("fence.sc;", "PS2.1 + sc fences   ")):
        program = build(fence)
        result = behaviors(program)
        violated = any(0 in outcome for outcome in result.outputs())
        race = ww_rf(program)
        print(f"{label}: ME violated = {violated}, counter ww-race-free = "
              f"{race.race_free} ({result.state_count} states)")

    print()
    print("Under SC Peterson is correct; in the paper's fragment (no SC")
    print("accesses) neither rel/acq nor SC fences rescue it — both the")
    print("canary and the Fig. 11 race detector expose the violation.")
    print("Use a CAS lock instead (examples/spinlock.py).")


if __name__ == "__main__":
    main()
