#!/usr/bin/env python3
"""Write-write and read-write race detection (paper Sec. 5 and Fig. 4/5).

* Fig. 4 — the program *looks* racy through a promise of x := 1, but the
  promise becomes unfulfillable exactly on the racy path, so the
  certification-aware definition declares it race-free;
* Fig. 5 — LInv (the first half of LICM) introduces a read-write race,
  which the paper deliberately allows in source programs;
* Lemma 5.1 — ww-RF and ww-NPRF agree.

Run:  python examples/race_detection.py
"""

from repro import SemanticsConfig, SyntacticPromises, ww_nprf, ww_rf
from repro.litmus.library import fig4_program, fig5_program
from repro.opt.licm import LInv
from repro.races.rwrace import rw_races


def banner(title: str) -> None:
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def demo_fig4() -> None:
    banner("Fig. 4: promise-certification-aware ww-race freedom")
    config = SemanticsConfig(promise_oracle=SyntacticPromises(budget=1))
    program = fig4_program()
    report = ww_rf(program, config)
    print(f"interleaving ww-RF : {report}")
    np_report = ww_nprf(program, config)
    print(f"non-preemptive     : {np_report}")
    print()
    print("Both agree (Lemma 5.1): the apparent race on z through the")
    print("promise of x := 1 dies at the consistency check — after t1")
    print("reads y = 1, its promise can never be fulfilled.")


def demo_fig5() -> None:
    banner("Fig. 5: LInv introduces read-write races (and that's fine)")
    source = fig5_program("source")
    linv = LInv().run(source)

    print(f"source rw-races on x : {[w.loc for w in rw_races(source)]}")
    print(f"after LInv           : {[w.loc for w in rw_races(linv)]}")
    print(f"source ww-RF         : {ww_rf(source).race_free}")
    print(f"after LInv ww-RF     : {ww_rf(linv).race_free}")
    print()
    print("The hoisted read of x races with g()'s write, but refinement")
    print("still holds (only one of the duplicated reads' values is used).")


def demo_racy_program() -> None:
    banner("A genuinely ww-racy program is rejected")
    from repro.lang.builder import straightline_program
    from repro.lang.syntax import AccessMode, Const, Store

    racy = straightline_program(
        [
            [Store("a", Const(1), AccessMode.NA)],
            [Store("a", Const(2), AccessMode.NA)],
        ]
    )
    report = ww_rf(racy)
    print(f"ww-RF : {report}")
    print()
    print("The optimization-correctness theorem (Thm. 6.5) only speaks")
    print("about ww-race-free sources; this program is outside its scope.")


def main() -> None:
    demo_fig4()
    demo_fig5()
    demo_racy_program()


if __name__ == "__main__":
    main()
