#!/usr/bin/env python3
"""Drive the thread-local simulation checker (paper Sec. 6) directly.

Shows the role of the invariant parameter I:

* Reorder (Sec. 2.3) simulates with the identity invariant I_id;
* the DCE example (Fig. 16) needs the weaker I_dce — with I_id the
  source's extra dead write breaks memory equality, exactly the paper's
  argument for a *parameterized* invariant (Sec. 8, comparison with
  PSSim).

Run:  python examples/simulation_proof.py
"""

from repro import check_thread_simulation, dce_invariant, identity_invariant
from repro.lang.builder import ProgramBuilder


def reorder(reordered: bool):
    pb = ProgramBuilder()
    f = pb.function("t1")
    b = f.block("entry")
    if reordered:
        b.store("y", 2, "na")
        b.load("r", "x", "na")
    else:
        b.load("r", "x", "na")
        b.store("y", 2, "na")
    b.print_("r")
    b.ret()
    pb.thread("t1")
    return pb.build()


def dce_example(eliminated: bool):
    pb = ProgramBuilder()
    f = pb.function("t1")
    b = f.block("entry")
    if eliminated:
        b.skip()
    else:
        b.store("x", 1, "na")
    b.store("x", 2, "na")
    b.ret()
    pb.thread("t1")
    return pb.build()


def main() -> None:
    print("=" * 64)
    print("Thread-local simulation checking (paper Def. 6.1 / Fig. 14)")
    print("=" * 64)
    print()

    print("Reorder:  r := x.na; y.na := 2   =>   y.na := 2; r := x.na")
    result = check_thread_simulation(reorder(False), reorder(True), "t1", identity_invariant())
    print(f"  with I_id : {result}")
    print()

    print("DCE (Fig. 16):  x := 1; x := 2   =>   skip; x := 2")
    for invariant in (dce_invariant(), identity_invariant()):
        result = check_thread_simulation(
            dce_example(False), dce_example(True), "t1", invariant
        )
        print(f"  with {invariant} : {result}")
    print()
    print("I_dce succeeds because it reserves an unused timestamp interval")
    print("below every related source message — the room the source needs")
    print("to place the dead write in lockstep (paper Fig. 16(c)).")
    print()

    print("A wrong transformation has no simulation under any I:")
    result = check_thread_simulation(
        dce_example(True), dce_example(False), "t1", dce_invariant()
    )
    print(f"  reversed direction : {result}")


if __name__ == "__main__":
    main()
