#!/usr/bin/env python3
"""Quickstart: write a litmus test, explore its PS2.1 behaviors.

This walks the three core entry points of the library:

1. ``parse_program`` — CSimpRTL concrete syntax → AST;
2. ``behaviors`` — exhaustive behavior-set computation under the
   interleaving PS2.1 machine (paper Fig. 9);
3. ``SemanticsConfig`` + ``SyntacticPromises`` — switching promise steps
   on, which is what makes load-buffering outcomes appear.

Run:  python examples/quickstart.py
"""

from repro import SemanticsConfig, SyntacticPromises, behaviors, parse_program

SB = """
// Store buffering: both threads may read the other's initial value.
atomics x, y;

fn t1 {
entry:
    x.rlx := 1;
    r1 := y.rlx;
    print(r1);
    return;
}

fn t2 {
entry:
    y.rlx := 1;
    r2 := x.rlx;
    print(r2);
    return;
}

threads t1, t2;
"""

LB = """
// Load buffering: the (1, 1) outcome exists only through promises.
atomics x, y;

fn t1 {
entry:
    r1 := x.rlx;
    y.rlx := 1;
    print(r1);
    return;
}

fn t2 {
entry:
    r2 := y.rlx;
    x.rlx := r2;
    print(r2);
    return;
}

threads t1, t2;
"""


def show(title: str, program, config=None) -> None:
    result = behaviors(program, config)
    status = "exhaustive" if result.exhaustive else "TRUNCATED"
    print(f"{title}")
    print(f"  states explored : {result.state_count} ({status})")
    print(f"  outcome set     : {sorted(result.outputs())}")
    print()


def main() -> None:
    print("=" * 64)
    print("Quickstart: exploring PS2.1 behaviors")
    print("=" * 64)

    sb = parse_program(SB)
    show("SB under PS2.1 (no promises needed for the weak outcome):", sb)

    lb = parse_program(LB)
    show("LB without promises — (1,1) missing:", lb)

    config = SemanticsConfig(promise_oracle=SyntacticPromises(budget=1))
    show("LB with a 1-promise oracle — (1,1) appears:", lb, config)

    print("The (1,1) row is the paper's annotated LB outcome (Sec. 2.1):")
    print("t1 promises y := 1, t2 reads the promise, and t1 later")
    print("fulfills it — certified against the capped memory throughout.")


if __name__ == "__main__":
    main()
