#!/usr/bin/env python3
"""The paper's figures, written in the paper's own structured syntax and
checked end to end through the CSimp front-end.

Fig. 1  — LICM across an acquire read (unsound) vs relaxed (sound);
Fig. 4  — write-write race freedom is promise-certification-aware;
Fig. 15 — DCE must not cross a release write.

Run:  python examples/paper_figures.py
"""

from repro import (
    SemanticsConfig,
    SyntacticPromises,
    check_refinement,
    lower_program,
    parse_csimp,
    ww_rf,
)

FIG1 = """
atomics x;

fn foo() {{
    r1 = 0;
    r2 = 0;
    {hoist}
    while (r1 < 1) {{
        while (x.{mode} == 0);
        {inner}
        r1 = r1 + 1;
    }}
    print(r2);
}}

fn g() {{
    y.na = 1;
    x.rel = 1;
}}

threads foo, g;
"""

FIG4 = """
atomics x, y;

fn t1() {
    r1 = y.rlx;
    if (r1 == 1) { z.na = 1; } else { x.rlx = 1; }
}

fn t2() {
    r2 = x.rlx;
    if (r2 == 1) { z.na = 2; y.rlx = 1; }
}

threads t1, t2;
"""

FIG15 = """
atomics x;

fn t1() {{
    {first}
    x.rel = 1;
    y.na = 4;
}}

fn g() {{
    r1 = x.acq;
    if (r1 == 1) {{ r2 = y.na; print(r2); }}
}}

threads t1, g;
"""


def fig1(mode: str, hoisted: bool):
    return lower_program(
        parse_csimp(
            FIG1.format(
                mode=mode,
                hoist="r2 = y.na;" if hoisted else "",
                inner="" if hoisted else "r2 = y.na;",
            )
        )
    )


def banner(title: str) -> None:
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def main() -> None:
    banner("Fig. 1 — loop invariant code motion")
    for mode in ("acq", "rlx"):
        result = check_refinement(fig1(mode, False), fig1(mode, True))
        verdict = "holds" if result.holds else f"FAILS (trace {result.counterexample})"
        print(f"  spin read .{mode}: foo_opt ∥ g ⊆ foo ∥ g  {verdict}")
    print("  — hoisting the non-atomic read is sound across relaxed reads,")
    print("    unsound across the acquire read, exactly as the paper argues.")

    banner("Fig. 4 — ww-race freedom checks races at certified states only")
    program = lower_program(parse_csimp(FIG4))
    config = SemanticsConfig(promise_oracle=SyntacticPromises(budget=1, max_outstanding=1))
    print(f"  {ww_rf(program, config)}")
    print("  — the execution that looks racy (promise x:=1, then read y=1)")
    print("    dies at the consistency check: no write-write race.")

    banner("Fig. 15 — DCE and the release barrier")
    source = lower_program(parse_csimp(FIG15.format(first="y.na = 2;")))
    broken = lower_program(parse_csimp(FIG15.format(first="skip;")))
    result = check_refinement(source, broken)
    print(f"  eliminating `y.na = 2`: refinement {'holds' if result.holds else 'FAILS'}")
    print(f"  source can print : {sorted(result.source_behaviors.outputs())}")
    print(f"  target can print : {sorted(result.target_behaviors.outputs())}")
    print("  — g() may observe the stale 0 only in the broken target; the")
    print("    paper's liveness barrier ('nothing is dead before a release")
    print("    write') is what forbids this elimination.")


if __name__ == "__main__":
    main()
