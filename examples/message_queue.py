#!/usr/bin/env python3
"""A single-producer / single-consumer handoff cell — the release/acquire
idiom real concurrent code is built from, verified end to end.

The producer writes a non-atomic payload and publishes it by a release
store of a sequence flag; the consumer spins on an acquire read and then
reads the payload.  We check:

1. the consumer never observes a torn/stale payload (every received value
   is one the producer fully published);
2. the program is write-write race free — the flag protocol synchronizes
   the non-atomic payload accesses;
3. weakening the publication to relaxed breaks both properties;
4. the optimizer pipeline transforms producer-side code soundly.

Run:  python examples/message_queue.py
"""

from repro import (
    CSE,
    ConstProp,
    DCE,
    behaviors,
    compose,
    lower_program,
    parse_csimp,
    rw_races,
    validate_optimizer,
    ww_rf,
)

QUEUE = """
atomics seq;

fn producer() {{
    // message 1
    payload.na = 11;
    seq.{publish} = 1;
    // wait for the consumer to take it
    while (seq.{observe} == 1);
    // message 2
    payload.na = 22;
    seq.{publish} = 3;
}}

fn consumer() {{
    while (seq.{observe} == 0);
    m1 = payload.na;
    print(m1);
    seq.{publish} = 2;
    while (seq.{observe} == 2);
    m2 = payload.na;
    print(m2);
}}

threads producer, consumer;
"""


def build(publish: str, observe: str):
    return lower_program(parse_csimp(QUEUE.format(publish=publish, observe=observe)))


def main() -> None:
    print("=" * 64)
    print("SPSC handoff cell (release/acquire publication)")
    print("=" * 64)

    good = build("rel", "acq")
    result = behaviors(good)
    outs = sorted(result.outputs())
    print(f"\nrel/acq protocol: {result}")
    print(f"complete outcomes: {outs}")
    assert outs == [(11, 22)], "every received message is exactly as published"
    print("the consumer always receives (11, 22) — no stale payloads.")
    report = ww_rf(good)
    print(f"ww-RF: {report}")

    weak = build("rlx", "rlx")
    weak_outs = sorted(behaviors(weak).outputs())
    print(f"\nrelaxed protocol outcomes: {weak_outs}")
    races = rw_races(weak)
    print(f"read-write races: {[w.loc for w in races]}")
    print("without release/acquire the consumer can read stale payloads")
    print("(e.g. 0 — the initial value): the payload accesses now race.")
    assert any(w.loc == "payload" for w in races)
    assert not any(w.loc == "payload" for w in rw_races(good))

    pipeline = compose(compose(ConstProp(), CSE()), DCE())
    validation = validate_optimizer(pipeline, good)
    print(f"\noptimizer pipeline on the protocol: {validation}")


if __name__ == "__main__":
    main()
