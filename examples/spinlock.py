#!/usr/bin/env python3
"""A CAS-based spinlock protecting a non-atomic counter — the realistic
shape the paper's machinery is for: non-atomic data, synchronized through
carefully-moded atomics, optimized by thread-local passes.

We verify with the library that:

1. mutual exclusion works — the final counter is always 2 (both
   increments observed; no lost update);
2. the program is **write-write race free** (Fig. 11): the release store
   of the lock and the acquire CAS synchronize the critical sections;
3. the optimizer pipeline transforms the critical section and the result
   still refines — including CSE eliminating a redundant read *inside*
   the critical section (allowed: no acquire read intervenes).

Run:  python examples/spinlock.py
"""

from repro import (
    CSE,
    ConstProp,
    DCE,
    behaviors,
    compose,
    format_program,
    parse_program,
    validate_optimizer,
    ww_rf,
)

SPINLOCK = """
// lock = 0: free, 1: held.  c is plain (non-atomic) data.
atomics lock;

fn worker {
acquire:
    got := cas.acq.rlx(lock, 0, 1);
    be got == 0, acquire, critical;
critical:
    r1 := c.na;             // redundant re-read below, CSE fodder
    r2 := c.na;
    c.na := r2 + 1;
    lock.rel := 0;
    return;
}

fn main {
entry:
    v := c.na;
    print(v);
    return;
}

threads worker, worker, main;
"""


def main() -> None:
    program = parse_program(SPINLOCK)
    print("=" * 64)
    print("CAS spinlock protecting a non-atomic counter")
    print("=" * 64)

    result = behaviors(program)
    outs = sorted(result.outputs())
    print(f"\nexplored {result.state_count} states "
          f"({'exhaustive' if result.exhaustive else 'TRUNCATED'})")
    print(f"observer prints: {outs}")
    finals = {o[0] for o in outs if o}
    print(f"counter values the unsynchronized observer can see: {sorted(finals)}")
    print("(0, 1 and 2 — the observer takes no lock, so it may read any")
    print(" stage; what mutual exclusion guarantees is no lost update,")
    print(" which the race-freedom check below certifies)")

    report = ww_rf(program)
    print(f"\nwrite-write race freedom: {report}")
    print("the rel-store/acq-CAS pair synchronizes the two na increments.")

    pipeline = compose(compose(ConstProp(), CSE()), DCE())
    validation = validate_optimizer(pipeline, program)
    print(f"\noptimizing the critical section: {validation}")
    print("\nworker after the pipeline (r2 := c.na became r2 := r1):")
    print(format_program(pipeline.run(program)).split("fn worker")[1].split("}")[0])


if __name__ == "__main__":
    main()
