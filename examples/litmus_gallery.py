#!/usr/bin/env python3
"""Run the whole litmus-test library and print an outcome gallery, plus the
Thm. 4.1 equivalence column (interleaving vs non-preemptive behaviors).

Run:  python examples/litmus_gallery.py
"""

from repro import SemanticsConfig, SyntacticPromises, behaviors, np_behaviors
from repro.litmus.library import LITMUS_SUITE


def config_for(test) -> SemanticsConfig:
    if test.needs_promises or test.promise_budget:
        oracle = SyntacticPromises(
            budget=test.promise_budget, max_outstanding=test.promise_budget
        )
        return SemanticsConfig(promise_oracle=oracle)
    return SemanticsConfig()


def main() -> None:
    header = f"{'test':<14} {'outcomes':<42} {'states':>7} {'np==il':>7}"
    print(header)
    print("-" * len(header))
    for name in sorted(LITMUS_SUITE):
        test = LITMUS_SUITE[name]
        config = config_for(test)
        interleaving = behaviors(test.program, config)
        nonpreemptive = np_behaviors(test.program, config)
        outs = sorted(interleaving.outputs())
        outs_str = ", ".join(str(tuple(int(v) for v in o)) for o in outs)
        if len(outs_str) > 40:
            outs_str = outs_str[:37] + "..."
        equal = interleaving.traces == nonpreemptive.traces
        print(
            f"{name:<14} {outs_str:<42} {interleaving.state_count:>7} "
            f"{'yes' if equal else 'NO':>7}"
        )
    print()
    print("np==il is Theorem 4.1: the non-preemptive machine produces")
    print("exactly the interleaving machine's observable behaviors.")


if __name__ == "__main__":
    main()
