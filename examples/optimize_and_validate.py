#!/usr/bin/env python3
"""Run the paper's four optimizations on real programs and validate each
transformation by exhaustive refinement checking.

Reproduces, end to end:

* Fig. 15 — DCE keeps the write before a release write (and the
  hand-eliminated variant is observably wrong);
* Fig. 1 — verified LICM refuses to hoist across an acquire read, naive
  LICM hoists and breaks refinement; with relaxed reads both are sound;
* a ConstProp + CSE + DCE pipeline on a small racy program.

Run:  python examples/optimize_and_validate.py
"""

from repro import (
    CSE,
    ConstProp,
    DCE,
    LICM,
    check_refinement,
    compose,
    format_program,
    naive_licm,
    parse_program,
    validate_optimizer,
)
from repro.lang.syntax import AccessMode
from repro.litmus.library import fig1_source, fig15_program


def banner(title: str) -> None:
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def demo_dce_fig15() -> None:
    banner("DCE on the paper's Fig. 15 (release-write barrier)")
    source = fig15_program(False)
    print("source thread t1:")
    print(format_program(source).split("fn t1")[1].split("}")[0])

    report = validate_optimizer(DCE(), source)
    target = DCE().run(source)
    print("after DCE (y := 2 survives the release barrier,")
    print("y := 4 is dead at thread exit):")
    print(format_program(target).split("fn t1")[1].split("}")[0])
    print(f"validation: {report}")

    bad = fig15_program(True)
    result = check_refinement(source, bad)
    print(f"hand-eliminating y := 2 instead: {result}")


def demo_licm_fig1() -> None:
    banner("LICM on the paper's Fig. 1 (acquire-read crossing)")
    for mode in (AccessMode.ACQ, AccessMode.RLX):
        source = fig1_source(mode)
        verified = LICM().run(source)
        naive = naive_licm().run(source)
        print(f"spin read mode = {mode}:")
        print(f"  verified LICM transformed : {verified != source}")
        if naive != source:
            result = check_refinement(source, naive)
            print(f"  naive LICM refinement     : {result}")
        print()


def demo_pipeline() -> None:
    banner("ConstProp ∘ CSE ∘ DCE pipeline")
    program = parse_program(
        """
        atomics flag;
        fn worker {
        entry:
            r1 := 2;
            r2 := r1 * 3;
            a.na := r2;
            r3 := a.na;
            r4 := a.na;          // redundant read
            dead := 42;          // dead register
            flag.rel := 1;
            print(r3 + r4);
            return;
        }
        fn observer {
        entry:
            g := flag.acq;
            be g == 1, hit, end;
        hit:
            v := a.na;
            print(v);
            jmp end;
        end:
            return;
        }
        threads worker, observer;
        """
    )
    pipeline = compose(compose(ConstProp(), CSE()), DCE())
    report = validate_optimizer(pipeline, program)
    print("worker after the pipeline:")
    print(format_program(pipeline.run(program)).split("fn worker")[1].split("}")[0])
    print(f"validation: {report}")


def main() -> None:
    demo_dce_fig15()
    demo_licm_fig1()
    demo_pipeline()


if __name__ == "__main__":
    main()
