"""E-STATIC-RW: the static rw tier vs. the exhaustive rw census.

The rw rung of the three-tier ladder must pull its weight: most of a
realistic corpus should be discharged without a single machine state.
Corpus: the litmus library plus two generated batches — 25 seeds under
the ``owned_reads_only`` discipline (rw-race-free by construction, the
shape the static tier targets) and 25 default seeds (reads may cross
threads, so many are genuinely racy and exercise the fallback).

Reported (human rows + a machine-readable ``BENCH`` json line):

* soundness — no program statically RACE_FREE yet exhaustively racy;
* the fraction of exhaustively rw-race-free programs the static tier
  discharges (acceptance target ≥ 0.50);
* tier-ladder speedup: states explored and wall-clock, tiered vs.
  always-exhaustive.
"""

import json
import time

from benchmarks.conftest import report
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.litmus.library import LITMUS_SUITE
from repro.races.rwrace import rw_races
from repro.races.tiered import rw_races_tiered

OWNED_SEEDS = range(25)
DEFAULT_SEEDS = range(25)


def _corpus():
    programs = [(name, test.program) for name, test in sorted(LITMUS_SUITE.items())]
    owned = GeneratorConfig(owned_reads_only=True)
    default = GeneratorConfig()
    programs += [
        (f"owned-{seed}", random_wwrf_program(seed, owned)) for seed in OWNED_SEEDS
    ]
    programs += [
        (f"gen-{seed}", random_wwrf_program(seed, default)) for seed in DEFAULT_SEEDS
    ]
    return programs


def test_static_rw_tier_discharge_rate(benchmark):
    programs = _corpus()

    def tiered_sweep():
        start = time.perf_counter()
        results = [(name, rw_races_tiered(program)[0]) for name, program in programs]
        return results, time.perf_counter() - start

    tiered, tiered_secs = benchmark.pedantic(tiered_sweep, rounds=1, iterations=1)

    start = time.perf_counter()
    exhaustive = [(name, rw_races(program)) for name, program in programs]
    exhaustive_secs = time.perf_counter() - start

    unsound = [
        name
        for (name, t), (_, witnesses) in zip(tiered, exhaustive)
        if t.race_free and t.method == "static" and witnesses
    ]
    race_free = [name for name, witnesses in exhaustive if not witnesses]
    static_hits = [name for name, t in tiered if t.method == "static"]
    discharged = [name for name in static_hits if name in race_free]
    fraction = len(discharged) / len(race_free) if race_free else 0.0
    states_tiered = sum(t.state_count for _, t in tiered)
    speedup = exhaustive_secs / max(tiered_secs, 1e-9)

    rows = [
        ("programs (litmus + owned + default)", len(programs)),
        ("exhaustively rw-race-free", len(race_free)),
        ("statically discharged", len(discharged)),
        ("discharge fraction (target ≥ 0.50)", f"{fraction:.2f}"),
        ("soundness violations (must be 0)", len(unsound)),
        ("states explored (tiered)", states_tiered),
        ("tiered sweep secs", f"{tiered_secs:.2f}"),
        ("exhaustive sweep secs", f"{exhaustive_secs:.2f}"),
        ("tier-ladder speedup", f"{speedup:.2f}x"),
    ]
    report("E-STATIC-RW", rows)
    print("BENCH " + json.dumps({
        "experiment": "static-rw-tier",
        "programs": len(programs),
        "rw_race_free": len(race_free),
        "statically_discharged": len(discharged),
        "discharge_fraction": round(fraction, 3),
        "soundness_violations": len(unsound),
        "states_tiered": states_tiered,
        "tiered_secs": round(tiered_secs, 3),
        "exhaustive_secs": round(exhaustive_secs, 3),
        "speedup": round(speedup, 2),
    }))

    assert not unsound, f"static RACE_FREE contradicts exhaustive on {unsound}"
    assert fraction >= 0.50


def test_tier_ladder_agreement():
    """Whenever the ladder falls back, its verdict must equal the pure
    census (the fallback *is* the exhaustive detector); on static
    discharges the census must agree there is no race."""
    for name, program in _corpus():
        tiered, _static = rw_races_tiered(program)
        witnesses = rw_races(program)
        assert tiered.race_free == (not witnesses), name
        if tiered.method == "static":
            assert tiered.state_count == 0, name
