"""E-LLVMDSE: the paper's Sec. 7.2 LLVM comparison — "LLVM's dead store
elimination only eliminates basic-block local redundant writes, while DCE
we verified can eliminate dead writes across basic blocks."

Measured as elimination counts of LocalDSE (the LLVM baseline) vs global
DCE over a generated corpus: DCE subsumes LocalDSE and eliminates strictly
more overall."""


from benchmarks.conftest import report
from repro.lang.syntax import Skip
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.opt.dce import DCE
from repro.opt.localdse import LocalDSE

CORPUS = GeneratorConfig(threads=2, instrs_per_thread=12, allow_branches=True)
SEEDS = range(40)


def eliminations(optimizer, program) -> int:
    out = optimizer.run(program)
    count = 0
    for fname, heap in out.functions:
        original = program.function(fname)
        for label, block in heap.blocks:
            for idx, instr in enumerate(block.instrs):
                if isinstance(instr, Skip) and not isinstance(
                    original[label].instrs[idx], Skip
                ):
                    count += 1
    return count


def test_global_dce_eliminates_more(benchmark):
    def run():
        local_total = 0
        global_total = 0
        for seed in SEEDS:
            program = random_wwrf_program(seed, CORPUS)
            local_total += eliminations(LocalDSE(), program)
            global_total += eliminations(DCE(), program)
        return local_total, global_total

    local_total, global_total = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E-LLVMDSE",
        [
            ("programs", len(SEEDS)),
            ("LocalDSE (LLVM-style) eliminations", local_total),
            ("global DCE eliminations", global_total),
            ("paper: global ≥ local", global_total >= local_total),
        ],
    )
    assert global_total > local_total  # strictly more across the corpus
