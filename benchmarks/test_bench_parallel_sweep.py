"""E-PERF: the parallel sweep engine, hash-consing, and result cache.

Three measurements, each emitting a ``BENCH`` json line:

* **parallel sweep** — the litmus suite explored serially vs ``jobs=4``.
  Per-program behavior digests must be identical at any parallelism
  (asserted unconditionally).  The ≥2.5× speedup acceptance criterion is
  asserted only on machines that actually have ≥4 usable cores — on a
  1-core CI runner a 4-worker pool cannot physically beat serial, so
  there the assertion degrades to a sanity floor while the BENCH line
  still records the measured number.
* **warm cache** — a litmus-file sweep against a cold then warm
  persistent cache: the warm run must answer ≥90% of programs from the
  cache and beat the cold run's wall clock.
* **interning** — the visited-set probe cost with cached hashes vs the
  structural re-walk the pre-hash-consing code paid on every probe
  (rebuilding and hashing the state's deep field tuple — the same walk
  ``tuple.__hash__`` did over these states when nothing was cached).
"""

import glob
import json
import os
import time
from fractions import Fraction
from pathlib import Path

from benchmarks.conftest import report
from repro.litmus.library import LITMUS_SUITE
from repro.litmus.spec import run_spec_file
from repro.perf.cache import ResultCache, behavior_digest
from repro.perf.pool import SweepJob, run_sweep
from repro.semantics.exploration import Explorer, behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig

EXAMPLES = Path(__file__).resolve().parents[1] / "examples" / "litmus"


def _suite_config(test) -> SemanticsConfig:
    if not test.needs_promises:
        return SemanticsConfig()
    # Budget 1 keeps the sweep small enough to repeat serially and in
    # parallel; the characteristic promise-dependent outcomes survive.
    return SemanticsConfig(
        promise_oracle=SyntacticPromises(budget=1, max_outstanding=1)
    )


def _suite_case(name: str) -> dict:
    """Explore one suite member (module-level for the fork pool)."""
    test = LITMUS_SUITE[name]
    bset = behaviors(test.program, _suite_config(test))
    return {
        "digest": behavior_digest(bset),
        "outcomes": sorted(map(tuple, bset.outputs()), key=repr),
        "exhaustive": bset.exhaustive,
    }


def test_parallel_sweep_speedup_and_determinism():
    jobs = [SweepJob(name, _suite_case, (name,)) for name in sorted(LITMUS_SUITE)]

    serial = run_sweep(jobs, jobs_n=1)
    parallel = run_sweep(jobs, jobs_n=4)

    assert serial.ok and parallel.ok
    for left, right in zip(serial.outcomes, parallel.outcomes):
        assert left.name == right.name
        assert left.value["digest"] == right.value["digest"], left.name
        assert left.value["outcomes"] == right.value["outcomes"], left.name

    speedup = serial.elapsed_seconds / max(parallel.elapsed_seconds, 1e-9)
    cores = len(os.sched_getaffinity(0))
    rows = [
        ("programs", len(jobs)),
        ("serial secs", f"{serial.elapsed_seconds:.2f}"),
        ("jobs=4 secs", f"{parallel.elapsed_seconds:.2f}"),
        ("speedup", f"{speedup:.2f}x"),
        ("usable cores", cores),
        ("digests identical", "yes"),
    ]
    report("E-PERF/parallel", rows)
    print("BENCH " + json.dumps({
        "experiment": "parallel-sweep",
        "programs": len(jobs),
        "serial_secs": round(serial.elapsed_seconds, 3),
        "parallel_secs": round(parallel.elapsed_seconds, 3),
        "speedup": round(speedup, 2),
        "cores": cores,
        "digests_identical": True,
    }))

    if cores >= 4:
        assert speedup >= 2.5, f"only {speedup:.2f}x on {cores} cores"
    else:
        # A 4-worker pool on <4 cores cannot beat serial; just require the
        # pool overhead to stay sane.
        assert speedup > 0.2, f"pool overhead pathological: {speedup:.2f}x"


def test_warm_cache_skips_reexploration(tmp_path):
    paths = sorted(glob.glob(str(EXAMPLES / "*")))
    assert len(paths) >= 10
    root = str(tmp_path / "cache")

    cold = ResultCache(root)
    started = time.perf_counter()
    for path in paths:
        run_spec_file(path, cache=cold)
    cold_secs = time.perf_counter() - started

    warm = ResultCache(root)
    started = time.perf_counter()
    for path in paths:
        run_spec_file(path, cache=warm)
    warm_secs = time.perf_counter() - started

    hit_rate = warm.hits / len(paths)
    rows = [
        ("programs", len(paths)),
        ("cold secs", f"{cold_secs:.2f}"),
        ("warm secs", f"{warm_secs:.2f}"),
        ("warm hit rate", f"{hit_rate:.0%}"),
        ("entries stored", cold.stores),
    ]
    report("E-PERF/cache", rows)
    print("BENCH " + json.dumps({
        "experiment": "warm-cache",
        "programs": len(paths),
        "cold_secs": round(cold_secs, 3),
        "warm_secs": round(warm_secs, 3),
        "hit_rate": round(hit_rate, 3),
    }))

    assert hit_rate >= 0.9, f"warm hit rate only {hit_rate:.0%}"
    assert warm_secs < cold_secs


def _deep_key(value):
    """The nested primitive tuple a plain dataclass hash walked per probe
    before hash-consing (Fractions kept as-is: their hash — a modular
    inverse — was the dominant leaf cost)."""
    if isinstance(value, (str, int, bool, float, Fraction)) or value is None:
        return value
    if isinstance(value, tuple):
        return tuple(_deep_key(v) for v in value)
    if hasattr(value, "__dataclass_fields__"):
        return tuple(
            _deep_key(getattr(value, name)) for name in value.__dataclass_fields__
        )
    return str(value)


def test_interning_cuts_probe_cost():
    test = LITMUS_SUITE["2+2W"]
    started = time.perf_counter()
    explorer = Explorer(test.program, SemanticsConfig()).build()
    build_secs = time.perf_counter() - started
    states = explorer.states
    assert len(states) > 1000

    rounds = 3
    started = time.perf_counter()
    for _ in range(rounds):
        for state in states:
            hash(state)  # cached: one attribute load
    cached_secs = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(rounds):
        for state in states:
            hash(_deep_key(state))  # the pre-hash-consing structural walk
    structural_secs = time.perf_counter() - started

    reduction = structural_secs / max(cached_secs, 1e-9)
    rows = [
        ("2+2W states", len(states)),
        ("Explorer.build secs", f"{build_secs:.2f}"),
        ("cached-hash probes secs", f"{cached_secs:.4f}"),
        ("structural-rehash secs", f"{structural_secs:.4f}"),
        ("probe cost reduction", f"{reduction:.0f}x"),
    ]
    report("E-PERF/interning", rows)
    print("BENCH " + json.dumps({
        "experiment": "interning",
        "states": len(states),
        "build_secs": round(build_secs, 3),
        "cached_probe_secs": round(cached_secs, 5),
        "structural_probe_secs": round(structural_secs, 5),
        "reduction": round(reduction, 1),
    }))

    assert cached_secs < structural_secs
