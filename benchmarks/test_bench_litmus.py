"""E-SB / E-LB / E-CAS: the paper's Sec. 2.1/3 litmus outcomes, timed.

Paper expectation:
  SB      — r1 = r2 = 0 allowed (all four outcomes);
  LB      — r1 = r2 = 1 allowed via promises; forbidden without;
  LB-OOTA — r1 = r2 = 1 forbidden (certification blocks the promise);
  CAS     — two CAS from the same write cannot both succeed.
"""


from benchmarks.conftest import report
from repro.litmus.library import cas_exclusivity, lb, lb_oota, sb
from repro.semantics.exploration import behaviors


def test_sb_all_outcomes(benchmark):
    result = benchmark(lambda: behaviors(sb()))
    outs = sorted(result.outputs())
    report(
        "E-SB",
        [
            ("paper: (0,0) allowed", True),
            ("measured outcomes", outs),
            ("states", result.state_count),
        ],
    )
    assert outs == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_lb_with_promises(benchmark, promise_config):
    result = benchmark(lambda: behaviors(lb(), promise_config))
    outs = sorted(result.outputs())
    report(
        "E-LB",
        [
            ("paper: (1,1) allowed via promise", True),
            ("measured outcomes", outs),
            ("states", result.state_count),
        ],
    )
    assert (1, 1) in outs


def test_lb_without_promises(benchmark):
    result = benchmark(lambda: behaviors(lb()))
    assert (1, 1) not in result.outputs()


def test_oota_forbidden(benchmark, promise_config):
    result = benchmark(lambda: behaviors(lb_oota(), promise_config))
    outs = sorted(result.outputs())
    report(
        "E-LB-OOTA",
        [("paper: only (0,0)", True), ("measured outcomes", outs)],
    )
    assert outs == [(0, 0)]


def test_cas_exclusivity(benchmark):
    result = benchmark(lambda: behaviors(cas_exclusivity()))
    outs = sorted(result.outputs())
    report(
        "E-CAS",
        [("paper: (1,1) forbidden", True), ("measured outcomes", outs)],
    )
    assert (1, 1) not in outs
