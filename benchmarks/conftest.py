"""Shared helpers for the benchmark/experiment harness.

Every ``test_bench_*`` file regenerates one experiment from DESIGN.md's
per-experiment index: it prints the paper-expected vs. measured result rows
(via the ``report`` helper, visible with ``pytest -s`` and in the captured
output summary) and asserts the qualitative shape, while pytest-benchmark
records the timing.
"""

from __future__ import annotations

import pytest

from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig


def report(exp_id: str, rows) -> None:
    """Print an experiment's result table (paper expectation vs measured)."""
    width = max((len(r[0]) for r in rows), default=20) + 2
    print()
    print(f"[{exp_id}]")
    for label, value in rows:
        print(f"  {label:<{width}} {value}")


@pytest.fixture
def promise_config() -> SemanticsConfig:
    return SemanticsConfig(promise_oracle=SyntacticPromises(budget=1, max_outstanding=1))


@pytest.fixture
def promise2_config() -> SemanticsConfig:
    return SemanticsConfig(promise_oracle=SyntacticPromises(budget=2, max_outstanding=2))
