"""E-ABLATIONS: design-choice ablations called out in DESIGN.md.

1. **Capped vs raw certification** — removing the capped memory readmits
   the CAS-assuming promise the paper's construction exists to forbid
   (Sec. 2.1), observable as an extra trace.
2. **Certification cache** — exploration cost with and without the
   memoized ``consistent`` results.
3. **Gap-leaving write placements** — state-space overhead of the extra
   placements (needed only by the simulation checker's source side).
"""


from benchmarks.conftest import report
from repro.litmus.library import lb
from repro.semantics.exploration import Explorer, behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig
from repro.litmus.library import promise_via_cas as competing_cas_program


def test_cap_ablation(benchmark):
    program = competing_cas_program()

    def explore(capped: bool):
        config = SemanticsConfig(
            promise_oracle=SyntacticPromises(budget=1, max_outstanding=1),
            certify_against_cap=capped,
        )
        return behaviors(program, config)

    capped = benchmark.pedantic(lambda: explore(True), rounds=1, iterations=1)
    ablated = explore(False)
    bad_trace = (7,)
    report(
        "E-ABL/cap",
        [
            ("bad trace under capped cert (paper: absent)", bad_trace in capped.traces),
            ("bad trace under raw cert", bad_trace in ablated.traces),
            ("capped traces ⊆ raw traces", capped.traces <= ablated.traces),
        ],
    )
    assert bad_trace not in capped.traces
    assert bad_trace in ablated.traces


def test_certification_cache_effectiveness(benchmark):
    config = SemanticsConfig(promise_oracle=SyntacticPromises(budget=1))

    def explore_with_cache():
        explorer = Explorer(lb(), config)
        explorer.build()
        return explorer.cert_stats

    stats = benchmark(explore_with_cache)
    hit_rate = stats.cache_hits / max(stats.calls, 1)
    report(
        "E-ABL/cert-cache",
        [
            ("certification calls", stats.calls),
            ("cache hits", stats.cache_hits),
            ("hit rate", f"{hit_rate:.0%}"),
        ],
    )
    assert stats.calls > 0


def test_gap_leaving_overhead(benchmark):
    from repro.lang.builder import straightline_program
    from repro.lang.syntax import AccessMode, Const, Store

    program = straightline_program(
        [[Store("a", Const(i), AccessMode.NA) for i in range(3)]] * 2
    )

    def states(leave_gaps: bool) -> int:
        config = SemanticsConfig(gap_leaving_writes=leave_gaps)
        explorer = Explorer(program, config).build()
        return len(explorer.states)

    plain = benchmark.pedantic(lambda: states(False), rounds=1, iterations=1)
    leaving = states(True)
    report(
        "E-ABL/gap-placements",
        [
            ("states, canonical placement", plain),
            ("states, gap-leaving placement", leaving),
            ("overhead", f"{leaving / plain:.2f}x"),
        ],
    )
    assert leaving >= plain
