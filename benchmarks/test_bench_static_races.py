"""E-STATIC: tiered vs. purely-exhaustive ww-race checking.

The point of the static tier is to discharge race-freedom *without*
exploring interleavings.  This experiment replays (a) the litmus library
and (b) a 50-seed generated corpus through both checkers and reports:

* soundness — no program is statically RACE_FREE yet exhaustively racy
  (the hard correctness obligation; also property-tested in
  ``tests/static/test_soundness.py``);
* the fraction of race-free programs discharged statically (target from
  DESIGN: ≥ 30%; the generator's per-location ownership discipline makes
  the corpus fraction high by construction);
* wall-clock of the tiered sweep vs. the exhaustive sweep.
"""

import time

from benchmarks.conftest import report
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.litmus.library import LITMUS_SUITE
from repro.races.tiered import ww_rf_tiered
from repro.races.wwrf import ww_rf

CORPUS_SEEDS = range(50)


def _corpus():
    programs = [(name, test.program) for name, test in sorted(LITMUS_SUITE.items())]
    config = GeneratorConfig()
    programs += [
        (f"gen-{seed}", random_wwrf_program(seed, config)) for seed in CORPUS_SEEDS
    ]
    return programs


def test_static_tier_discharge_rate(benchmark):
    programs = _corpus()

    def tiered_sweep():
        return [(name, ww_rf_tiered(program)) for name, program in programs]

    tiered = benchmark.pedantic(tiered_sweep, rounds=1, iterations=1)

    start = time.perf_counter()
    exhaustive = [(name, ww_rf(program)) for name, program in programs]
    exhaustive_secs = time.perf_counter() - start

    unsound = [
        name
        for (name, t), (_, e) in zip(tiered, exhaustive)
        if t.race_free and not e.race_free
    ]
    race_free = [name for name, e in exhaustive if e.race_free]
    static_hits = [name for name, t in tiered if t.method == "static"]
    discharged = [name for name in static_hits if name in race_free]
    fraction = len(discharged) / len(race_free) if race_free else 0.0
    states_tiered = sum(t.state_count for _, t in tiered)
    states_exhaustive = sum(e.state_count for _, e in exhaustive)

    report(
        "E-STATIC",
        [
            ("programs (litmus + corpus)", len(programs)),
            ("exhaustively race-free", len(race_free)),
            ("statically discharged", len(discharged)),
            ("discharge fraction (target ≥ 0.30)", f"{fraction:.2f}"),
            ("soundness violations (must be 0)", len(unsound)),
            ("states explored (tiered)", states_tiered),
            ("states explored (exhaustive)", states_exhaustive),
            ("exhaustive sweep secs", f"{exhaustive_secs:.2f}"),
        ],
    )

    assert not unsound, f"static RACE_FREE contradicts exhaustive on {unsound}"
    assert fraction >= 0.30
    assert states_tiered < states_exhaustive


def test_static_tier_verdict_agreement():
    """On every fallback the tiered verdict must equal the exhaustive one
    (the fallback *is* the exhaustive checker)."""
    for name, program in _corpus():
        tiered = ww_rf_tiered(program)
        exhaustive = ww_rf(program)
        assert tiered.race_free == exhaustive.race_free, name
