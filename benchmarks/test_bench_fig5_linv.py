"""E-FIG5: LInv introduces read-write races yet preserves refinement
(paper Sec. 2.5, Fig. 5).

Paper expectation:
  - source (Csrc, acquire-guarded) has no rw-race on x;
  - after LInv (Cm) there is a rw-race on x;
  - all three stages remain ww-race-free;
  - refinement holds along the whole LInv → CSE pipeline.
"""


from benchmarks.conftest import report
from repro.litmus.library import fig5_program
from repro.races.rwrace import rw_races
from repro.races.wwrf import ww_rf
from repro.sim.refinement import check_refinement


def test_linv_rw_race_introduction(benchmark):
    def run():
        src_races = {w.loc for w in rw_races(fig5_program("source"))}
        linv_races = {w.loc for w in rw_races(fig5_program("linv"))}
        return src_races, linv_races

    src_races, linv_races = benchmark(run)
    report(
        "E-FIG5/races",
        [
            ("paper: source race-free on x", "x" not in src_races),
            ("paper: LInv output racy on x", "x" in linv_races),
            ("source rw-race locs", sorted(src_races)),
            ("LInv rw-race locs", sorted(linv_races)),
        ],
    )
    assert "x" not in src_races
    assert "x" in linv_races


def test_pipeline_refinement(benchmark):
    def run():
        return (
            check_refinement(fig5_program("source"), fig5_program("linv")).holds,
            check_refinement(fig5_program("linv"), fig5_program("cse")).holds,
            check_refinement(fig5_program("source"), fig5_program("cse")).holds,
        )

    linv_ok, cse_ok, licm_ok = benchmark(run)
    report(
        "E-FIG5/refinement",
        [
            ("LInv refines source", linv_ok),
            ("CSE refines LInv output", cse_ok),
            ("LICM (composition) refines source", licm_ok),
        ],
    )
    assert linv_ok and cse_ok and licm_ok


def test_ww_rf_preserved_along_pipeline(benchmark):
    def run():
        return [ww_rf(fig5_program(stage)).race_free for stage in ("source", "linv", "cse")]

    results = benchmark(run)
    report(
        "E-FIG5/ww-rf",
        [("paper: all stages ww-RF", True), ("measured", results)],
    )
    assert all(results)
