"""Interpreter microbenchmarks: raw PS2.1 stepping throughput.

Not a paper experiment — infrastructure numbers that contextualize the
exploration-based experiment costs (how expensive is a thread step, a
certification, a randomized execution)."""


from benchmarks.conftest import report
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.litmus.library import sb
from repro.semantics.exploration import behaviors
from repro.semantics.random_run import random_run
from repro.semantics.thread import SemanticsConfig


def test_random_execution_throughput(benchmark):
    big = GeneratorConfig(threads=4, instrs_per_thread=30)
    program = random_wwrf_program(1, big)

    counter = iter(range(10**9))

    def run():
        return random_run(program, seed=next(counter), max_steps=5000)

    result = benchmark(run)
    report(
        "interp/random-run",
        [("instructions", program.num_instructions()), ("steps", result.steps)],
    )


def test_exploration_throughput(benchmark):
    def run():
        return behaviors(sb())

    result = benchmark(run)
    rate = result.state_count
    report("interp/explore-sb", [("states", rate)])


def test_certification_heavy_exploration(benchmark):
    """Exploration with promises exercises certification on every step."""
    from repro.litmus.library import lb
    from repro.semantics.promises import SyntacticPromises

    config = SemanticsConfig(promise_oracle=SyntacticPromises(budget=1))

    result = benchmark(lambda: behaviors(lb(), config))
    report("interp/explore-lb-promises", [("states", result.state_count)])
