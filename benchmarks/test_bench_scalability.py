"""Scalability series: how exploration cost grows with program size —
the figure-style series that contextualizes every other experiment
(states and wall-clock vs thread count / block width / promise budget)."""

import pytest

from benchmarks.conftest import report
from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Const, Load, Print, Reg, Store
from repro.litmus.library import lb
from repro.semantics.exploration import Explorer
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig


def writers_readers(threads: int):
    """⌈threads/2⌉ writer threads and ⌊threads/2⌋ readers over one cell."""
    specs = []
    for i in range(threads):
        if i % 2 == 0:
            specs.append([Store("x", Const(i + 1), AccessMode.RLX)])
        else:
            specs.append([Load(f"r{i}", "x", AccessMode.RLX), Print(Reg(f"r{i}"))])
    return straightline_program(specs, atomics={"x"})


def count_states(program, config=None) -> int:
    explorer = Explorer(program, config or SemanticsConfig()).build()
    assert explorer.exhaustive
    return len(explorer.states)


@pytest.mark.parametrize("threads", [2, 3, 4])
def test_states_vs_thread_count(benchmark, threads):
    program = writers_readers(threads)
    states = benchmark.pedantic(lambda: count_states(program), rounds=1, iterations=1)
    report(f"scalability/threads={threads}", [("states", states)])
    assert states > 0


@pytest.mark.parametrize("budget", [0, 1, 2])
def test_states_vs_promise_budget(benchmark, budget):
    config = (
        SemanticsConfig(promise_oracle=SyntacticPromises(budget=budget, max_outstanding=budget))
        if budget
        else SemanticsConfig()
    )
    states = benchmark.pedantic(lambda: count_states(lb(), config), rounds=1, iterations=1)
    report(f"scalability/promise-budget={budget}", [("LB states", states)])
    assert states > 0


@pytest.mark.parametrize("width", [2, 4, 6])
def test_states_vs_block_width(benchmark, width):
    program = straightline_program(
        [
            [Store(f"v{i}", Const(i), AccessMode.NA) for i in range(width)],
            [Load(f"r{i}", f"v{i}", AccessMode.NA) for i in range(width)],
        ]
    )
    states = benchmark.pedantic(lambda: count_states(program), rounds=1, iterations=1)
    report(f"scalability/width={width}", [("states", states)])
    assert states > 0
