"""Scalability series: how exploration cost grows with program size —
the figure-style series that contextualizes every other experiment
(states and wall-clock vs thread count / block width / promise budget),
plus the POR trajectory: states explored under ``--por=none`` / ``fusion``
/ ``dpor`` on the same families, emitted as machine-readable ``BENCH``
json lines (seeded into ``BENCH.json`` by this series)."""

import json
import time

import pytest

from benchmarks.conftest import report
from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Const, Load, Print, Reg, Store
from repro.litmus.library import lb
from repro.semantics.exploration import Explorer
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig


def writers_readers(threads: int):
    """⌈threads/2⌉ writer threads and ⌊threads/2⌋ readers over one cell."""
    specs = []
    for i in range(threads):
        if i % 2 == 0:
            specs.append([Store("x", Const(i + 1), AccessMode.RLX)])
        else:
            specs.append([Load(f"r{i}", "x", AccessMode.RLX), Print(Reg(f"r{i}"))])
    return straightline_program(specs, atomics={"x"})


def count_states(program, config=None) -> int:
    explorer = Explorer(program, config or SemanticsConfig()).build()
    assert explorer.exhaustive
    return len(explorer.states)


@pytest.mark.parametrize("threads", [2, 3, 4])
def test_states_vs_thread_count(benchmark, threads):
    program = writers_readers(threads)
    states = benchmark.pedantic(lambda: count_states(program), rounds=1, iterations=1)
    report(f"scalability/threads={threads}", [("states", states)])
    assert states > 0


@pytest.mark.parametrize("budget", [0, 1, 2])
def test_states_vs_promise_budget(benchmark, budget):
    config = (
        SemanticsConfig(promise_oracle=SyntacticPromises(budget=budget, max_outstanding=budget))
        if budget
        else SemanticsConfig()
    )
    states = benchmark.pedantic(lambda: count_states(lb(), config), rounds=1, iterations=1)
    report(f"scalability/promise-budget={budget}", [("LB states", states)])
    assert states > 0


@pytest.mark.parametrize("width", [2, 4, 6])
def test_states_vs_block_width(benchmark, width):
    program = straightline_program(
        [
            [Store(f"v{i}", Const(i), AccessMode.NA) for i in range(width)],
            [Load(f"r{i}", f"v{i}", AccessMode.NA) for i in range(width)],
        ]
    )
    states = benchmark.pedantic(lambda: count_states(program), rounds=1, iterations=1)
    report(f"scalability/width={width}", [("states", states)])
    assert states > 0


def disjoint_threads(threads: int, width: int):
    """``threads`` threads, each writing ``width`` private NA locations —
    the fully-independent family where DPOR's reduction is structural
    (one schedule per Mazurkiewicz class = exactly one schedule)."""
    return straightline_program(
        [
            [Store(f"t{t}v{i}", Const(i + 1), AccessMode.NA) for i in range(width)]
            for t in range(threads)
        ]
    )


def _por_row(program, label):
    row = {"family": label}
    for por in ("none", "fusion", "dpor"):
        start = time.monotonic()
        explorer = Explorer(program, SemanticsConfig(por=por)).build()
        assert explorer.exhaustive
        row[f"{por}_states"] = len(explorer.states)
        row[f"{por}_secs"] = round(time.monotonic() - start, 3)
        if por == "dpor":
            row["redundant_executions"] = (
                explorer.dpor_stats.redundant_executions
            )
    row["reduction"] = round(row["none_states"] / row["dpor_states"], 2)
    return row


@pytest.mark.parametrize("threads,width", [(3, 4), (4, 4)])
def test_states_por_disjoint_threads(benchmark, threads, width):
    program = disjoint_threads(threads, width)
    row = benchmark.pedantic(
        lambda: _por_row(program, f"disjoint/threads={threads},width={width}"),
        rounds=1,
        iterations=1,
    )
    report(
        f"scalability/disjoint threads={threads} width={width}",
        [(por, row[f"{por}_states"]) for por in ("none", "fusion", "dpor")]
        + [("reduction (none/dpor)", f"{row['reduction']}x")],
    )
    print("BENCH " + json.dumps({"experiment": "por-scalability", **row}))
    # The headline target: DPOR explores >=10x fewer states than the
    # unreduced explorer on the independent family, and the source-set
    # core never starts a sleep-blocked (redundant) execution there.
    assert row["none_states"] >= 10 * row["dpor_states"]
    assert row["redundant_executions"] == 0


@pytest.mark.parametrize("width", [4, 6])
def test_states_por_block_width(benchmark, width):
    program = straightline_program(
        [
            [Store(f"v{i}", Const(i), AccessMode.NA) for i in range(width)],
            [Load(f"r{i}", f"v{i}", AccessMode.NA) for i in range(width)],
        ]
    )
    row = benchmark.pedantic(
        lambda: _por_row(program, f"width={width}"), rounds=1, iterations=1
    )
    report(
        f"scalability/por width={width}",
        [(por, row[f"{por}_states"]) for por in ("none", "fusion", "dpor")]
        + [("reduction (none/dpor)", f"{row['reduction']}x")],
    )
    print("BENCH " + json.dumps({"experiment": "por-scalability", **row}))
    assert row["dpor_states"] < row["fusion_states"] < row["none_states"]
    # Every (Store v_i, Load v_i) pair genuinely conflicts, so the ~2.3x
    # of this family is the *optimal* reduction for its dependence
    # structure, not sleep-set slack: zero redundant executions, and the
    # state count must never regress past the source-set core's figure
    # (width=4 explored 138 states when this assertion was added).
    assert row["redundant_executions"] == 0
    if width == 4:
        assert row["dpor_states"] <= 138


@pytest.mark.parametrize("threads,width", [(3, 3), (3, 4)])
def test_states_por_promise_disjoint(benchmark, threads, width):
    """The promise-bearing disjoint family: each thread non-atomically
    writes only its private locations, under a syntactic promise oracle.
    Before the certification-scoped footprints landed, ``--por=dpor``
    silently fell back to fused BFS on any promise-bearing config; now
    the promise/certification steps carry a location-window footprint, so
    per-thread windows are disjoint and the reduction is structural."""
    import dataclasses

    program = disjoint_threads(threads, width)
    base = SemanticsConfig(
        promise_oracle=SyntacticPromises(budget=1, max_outstanding=1)
    )

    def run():
        row = {"family": f"promise-disjoint/threads={threads},width={width}"}
        traces = {}
        for por in ("none", "fusion", "dpor"):
            start = time.monotonic()
            explorer = Explorer(
                program, dataclasses.replace(base, por=por)
            ).build()
            assert explorer.exhaustive
            row[f"{por}_states"] = len(explorer.states)
            row[f"{por}_secs"] = round(time.monotonic() - start, 3)
            traces[por] = explorer.behaviors().traces
            if por == "dpor":
                stats = explorer.dpor_stats
                row["redundant_executions"] = stats.redundant_executions
                row["promise_footprints"] = stats.promise_footprints
        assert traces["none"] == traces["fusion"] == traces["dpor"]
        row["reduction"] = round(row["none_states"] / row["dpor_states"], 2)
        return row

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        f"scalability/promise-disjoint threads={threads} width={width}",
        [(por, row[f"{por}_states"]) for por in ("none", "fusion", "dpor")]
        + [
            ("reduction (none/dpor)", f"{row['reduction']}x"),
            ("redundant executions", row["redundant_executions"]),
        ],
    )
    print("BENCH " + json.dumps({"experiment": "por-scalability", **row}))
    # Acceptance: at least 5x fewer states than fused BFS on the
    # promise-bearing family, with zero redundant (sleep-blocked)
    # executions — the optimality measure on disjoint families.
    assert row["fusion_states"] >= 5 * row["dpor_states"]
    assert row["redundant_executions"] == 0
