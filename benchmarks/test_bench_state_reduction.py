"""E-NPSTATE: the non-preemptive semantics reduces non-determinism
(paper Sec. 4: "it reduces non-determinism, making it potentially easier
to reason about program behaviors").

Measured as reachable-state counts and exploration wall-clock of the two
machines on the same programs: the non-preemptive graph should never be
larger, and on NA-heavy programs substantially smaller.
"""

import pytest

from benchmarks.conftest import report
from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Const, Load, Print, Reg, Store
from repro.litmus.library import LITMUS_SUITE
from repro.semantics.exploration import Explorer
from repro.semantics.thread import SemanticsConfig


def na_heavy(width: int):
    """Two threads with ``width``-instruction non-atomic blocks."""
    writes = [Store(f"v{i}", Const(i), AccessMode.NA) for i in range(width)]
    reads = [Load(f"r{i}", f"v{i}", AccessMode.NA) for i in range(width)]
    return straightline_program([writes + [Print(Const(0))], reads + [Print(Reg("r0"))]])


def count_states(program, nonpreemptive: bool) -> int:
    explorer = Explorer(program, SemanticsConfig(), nonpreemptive=nonpreemptive).build()
    assert explorer.exhaustive
    return len(explorer.states)


@pytest.mark.parametrize("width", [2, 3, 4])
def test_state_reduction_on_na_blocks(benchmark, width):
    program = na_heavy(width)
    interleaving = count_states(program, False)
    nonpreemptive = benchmark(lambda: count_states(program, True))
    report(
        f"E-NPSTATE/width={width}",
        [
            ("interleaving states", interleaving),
            ("non-preemptive states", nonpreemptive),
            ("reduction", f"{interleaving / nonpreemptive:.2f}x"),
        ],
    )
    assert nonpreemptive < interleaving


def test_state_reduction_across_suite(benchmark):
    def run():
        rows = []
        for name in sorted(LITMUS_SUITE):
            program = LITMUS_SUITE[name].program
            rows.append((name, count_states(program, False), count_states(program, True)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E-NPSTATE/suite",
        [(name, f"interleaving={il} np={np} ({il/np:.2f}x)") for name, il, np in rows],
    )
    # The NP graph is never larger (switch restriction only removes edges;
    # the extra switch bit can at most double states, which the restriction
    # more than compensates on this suite).
    assert all(np <= il for _, il, np in rows)
