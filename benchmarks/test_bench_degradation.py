"""E-DEGRADE: the degradation ladder vs. plain exhaustive validation.

The ladder (``docs/robustness.md``) exists so that one pathological
program cannot hang a sweep: exhaustive validation under a budget, then
a bounded retry, then randomized sampling — each rung stamped with the
confidence it affords.  This experiment replays the litmus library plus
a generated corpus through both modes and reports:

* wall-clock of the governed ladder sweep vs. the plain exhaustive
  sweep (the finite members; the divergent member would hang it);
* the verdict-confidence distribution of the ladder sweep — the finite
  corpus must come back ``PROVED``, the divergent member must degrade
  (``BOUNDED`` or ``SAMPLED``), and **no non-exhaustive verdict may
  claim PROVED**;
* verdict agreement between the two modes on the finite members.
"""

import json
import time

from benchmarks.conftest import report
from repro.lang.parser import parse_program
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.litmus.library import LITMUS_SUITE
from repro.opt.constprop import ConstProp
from repro.robust.budget import Budget
from repro.robust.confidence import Confidence
from repro.robust.degrade import DegradationPolicy, validate_with_degradation
from repro.sim.validate import validate_optimizer

CORPUS_SEEDS = range(15)

DIVERGENT = parse_program("""
atomics x;
fn spin {
entry:
    jmp loop;
loop:
    r := x.rlx;
    x.rlx := r + 1;
    print(r);
    jmp loop;
}
threads spin;
""")


def _finite_corpus():
    programs = [(name, test.program) for name, test in sorted(LITMUS_SUITE.items())]
    config = GeneratorConfig()
    programs += [
        (f"gen-{seed}", random_wwrf_program(seed, config)) for seed in CORPUS_SEEDS
    ]
    return programs


def test_ladder_vs_exhaustive(benchmark):
    finite = _finite_corpus()
    corpus = finite + [("divergent-spin", DIVERGENT)]
    policy = DegradationPolicy(budget=Budget(deadline_seconds=2.0))

    def ladder_sweep():
        return [
            (name, validate_with_degradation(ConstProp(), program, policy=policy))
            for name, program in corpus
        ]

    ladder = benchmark.pedantic(ladder_sweep, rounds=1, iterations=1)
    ladder_secs = benchmark.stats.stats.total

    start = time.perf_counter()
    exhaustive = [
        (name, validate_optimizer(ConstProp(), program)) for name, program in finite
    ]
    exhaustive_secs = time.perf_counter() - start

    by_name = dict(ladder)
    distribution = {c.name: 0 for c in Confidence}
    for _, verdict in ladder:
        distribution[verdict.confidence.name] += 1
    unsound = [
        name
        for name, verdict in ladder
        if verdict.confidence is Confidence.PROVED and not verdict.exhaustive
    ]
    disagreements = [
        name for name, verdict in exhaustive if verdict.ok != by_name[name].ok
    ]
    degraded = by_name["divergent-spin"]

    rows = [
        ("programs (litmus + corpus + divergent)", len(corpus)),
        ("ladder sweep secs", f"{ladder_secs:.2f}"),
        ("exhaustive sweep secs (finite only)", f"{exhaustive_secs:.2f}"),
        ("confidence PROVED", distribution["PROVED"]),
        ("confidence BOUNDED", distribution["BOUNDED"]),
        ("confidence SAMPLED", distribution["SAMPLED"]),
        ("divergent member degraded to", degraded.confidence.name),
        ("PROVED-without-exhaustive (must be 0)", len(unsound)),
        ("verdict disagreements (must be 0)", len(disagreements)),
    ]
    report("E-DEGRADE", rows)
    print("BENCH " + json.dumps({
        "experiment": "degradation-ladder",
        "programs": len(corpus),
        "ladder_secs": round(ladder_secs, 3),
        "exhaustive_secs": round(exhaustive_secs, 3),
        "confidence": distribution,
        "divergent_confidence": degraded.confidence.name,
        "agreement": not disagreements,
    }))

    assert not unsound, f"non-exhaustive PROVED on {unsound}"
    assert not disagreements, f"mode disagreement on {disagreements}"
    assert degraded.confidence is not Confidence.PROVED
    assert distribution["PROVED"] == len(finite)


def test_ladder_bounds_divergent_wall_clock():
    """The reason the ladder exists: a divergent program costs bounded
    wall-clock (≈ deadline × rungs), not forever."""
    policy = DegradationPolicy(budget=Budget(deadline_seconds=0.5))
    start = time.perf_counter()
    verdict = validate_with_degradation(ConstProp(), DIVERGENT, policy=policy)
    elapsed = time.perf_counter() - start
    assert elapsed < 15.0
    assert verdict.confidence is not Confidence.PROVED
