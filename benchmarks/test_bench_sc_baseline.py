"""E-SCBASE: PS2.1 vs the SC baseline — which weak outcomes exist only in
the promising semantics.

The paper contrasts its setting with SC-based prior work (Sec. 8:
CASCompCert, Simuliris); this experiment makes the gap concrete by running
the litmus suite under both semantics and tabulating the PS-only
behaviors."""

import pytest

from benchmarks.conftest import report
from repro.litmus.library import iriw_rlx, lb, mp_rlx, sb
from repro.semantics.exploration import behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.sc import sc_behaviors
from repro.semantics.thread import SemanticsConfig

CASES = [
    ("SB", sb(), (0, 0), 0),
    ("LB", lb(), (1, 1), 1),
    ("MP-rlx", mp_rlx(), (0,), 0),
    ("IRIW-rlx", iriw_rlx(), (10, 10), 0),
]


@pytest.mark.parametrize("name,program,weak,budget", CASES, ids=[c[0] for c in CASES])
def test_weak_outcome_is_ps_only(benchmark, name, program, weak, budget):
    config = SemanticsConfig(
        promise_oracle=SyntacticPromises(budget=budget, max_outstanding=max(budget, 1))
    ) if budget else SemanticsConfig()

    def run():
        ps = behaviors(program, config)
        sc = sc_behaviors(program)
        return ps, sc

    ps, sc = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        f"E-SCBASE/{name}",
        [
            ("weak outcome", weak),
            ("in PS2.1 (paper: yes)", weak in ps.outputs()),
            ("in SC (paper: no)", weak in sc.outputs()),
            ("PS states / SC states", f"{ps.state_count} / {sc.state_count}"),
        ],
    )
    assert weak in ps.outputs()
    assert weak not in sc.outputs()


def test_sc_always_subset(benchmark):
    def run():
        rows = []
        for name, program, _, _ in CASES:
            ps = behaviors(program)
            sc = sc_behaviors(program)
            rows.append((name, sc.traces <= ps.traces))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("E-SCBASE/subset", [(name, ok) for name, ok in rows])
    assert all(ok for _, ok in rows)
