"""E-FIG1: the paper's Fig. 1 — LICM across an acquire read is unsound,
across a relaxed read it is sound.

Paper expectation (Sec. 1):
  acq spin read : foo_opt ∥ g does NOT refine foo ∥ g (r2 may see 0);
  rlx spin read : refinement holds.
Measured through both the hand-written target and the actual optimizer.
"""


from benchmarks.conftest import report
from repro.lang.syntax import AccessMode
from repro.litmus.library import fig1_source, fig1_target
from repro.opt.licm import LICM, naive_licm
from repro.sim.refinement import check_refinement


def test_fig1_acquire_unsound(benchmark):
    result = benchmark(
        lambda: check_refinement(fig1_source(AccessMode.ACQ), fig1_target(AccessMode.ACQ))
    )
    report(
        "E-FIG1/acq",
        [
            ("paper: refinement fails", True),
            ("measured: holds", result.holds),
            ("counterexample trace", result.counterexample),
            ("src outcomes", sorted(result.source_behaviors.outputs())),
            ("tgt outcomes", sorted(result.target_behaviors.outputs())),
        ],
    )
    assert result.definitive and not result.holds


def test_fig1_relaxed_sound(benchmark):
    result = benchmark(
        lambda: check_refinement(fig1_source(AccessMode.RLX), fig1_target(AccessMode.RLX))
    )
    report(
        "E-FIG1/rlx",
        [("paper: refinement holds", True), ("measured: holds", result.holds)],
    )
    assert result.definitive and result.holds


def test_fig1_through_optimizers(benchmark):
    def run():
        src_acq = fig1_source(AccessMode.ACQ)
        src_rlx = fig1_source(AccessMode.RLX)
        return (
            LICM().run(src_acq) == src_acq,                    # verified pass refuses
            check_refinement(src_acq, naive_licm().run(src_acq)).holds,   # naive breaks
            check_refinement(src_rlx, LICM().run(src_rlx)).holds,         # verified OK
        )

    refused, naive_holds, verified_holds = benchmark(run)
    report(
        "E-FIG1/optimizer",
        [
            ("verified LICM refuses acq-crossing", refused),
            ("naive LICM refinement (paper: fails)", naive_holds),
            ("verified LICM on rlx (paper: holds)", verified_holds),
        ],
    )
    assert refused and not naive_holds and verified_holds


def test_fig1_source_level_licm(benchmark):
    """The same experiment at the *source* level: the paper presents LICM
    as a structured source-to-source transformation (foo → foo_opt), which
    `repro.csimp.opt.SourceLicm` implements directly on the AST."""
    from repro.csimp import lower_program, parse_csimp
    from repro.csimp.opt import SourceLicm

    template = """
    atomics x;
    fn foo() {{
        r1 = 0;
        r2 = 0;
        while (r1 < 1) {{
            while (x.{mode} == 0);
            r2 = y.na;
            r1 = r1 + 1;
        }}
        print(r2);
    }}
    fn g() {{ y.na = 1; x.rel = 1; }}
    threads foo, g;
    """

    def run():
        acq = parse_csimp(template.format(mode="acq"))
        rlx = parse_csimp(template.format(mode="rlx"))
        refused = SourceLicm().run(acq) == acq
        naive = SourceLicm(respect_acquire=False).run(acq)
        naive_result = check_refinement(lower_program(acq), lower_program(naive))
        hoisted = SourceLicm().run(rlx)
        sound_result = check_refinement(lower_program(rlx), lower_program(hoisted))
        return refused, naive_result, sound_result

    refused, naive_result, sound_result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E-FIG1/source-level",
        [
            ("verified SourceLicm refuses acq", refused),
            ("naive SourceLicm refinement (paper: fails)", naive_result.holds),
            ("counterexample", naive_result.counterexample),
            ("verified SourceLicm on rlx (paper: holds)", sound_result.holds),
        ],
    )
    assert refused and not naive_result.holds and sound_result.holds
