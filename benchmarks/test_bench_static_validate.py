"""E-STATIC-VALIDATE: tier 0 (static certifier) vs. always-exploration.

The static translation-validation tier must pull its weight in front of
refinement checking: over a realistic ww-race-free corpus, the crossing
oracle + Owicki–Gries certifier should discharge most transformations
without enumerating a single behavior, and the tiered ladder
(:func:`repro.sim.validate.validate_tiered`) should beat the
always-exploration sweep wall-clock.

Corpus: the litmus library plus two generated batches — 20 default
seeds and 15 seeds with reorderable instruction clusters (so the
``I_reorder`` permutation rule actually fires).  Gallery: ConstProp,
CSE, DCE, Reorder — the passes the certifier ships legality profiles
for.

Reported (human rows + a machine-readable ``BENCH`` json line):

* soundness — no CERTIFIED verdict contradicted by exploration;
* the static discharge fraction over transformed programs
  (acceptance target ≥ 0.70);
* ladder speedup, tiered vs. always-exploration (target ≥ 2x).
"""

import json
import time

from benchmarks.conftest import report
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.litmus.library import LITMUS_SUITE
from repro.opt import CSE, DCE, ConstProp, Reorder
from repro.sim import validate_optimizer, validate_tiered

DEFAULT_SEEDS = range(20)
REORDER_SEEDS = range(15)

GALLERY = (ConstProp(), CSE(), DCE(), Reorder())


def _corpus():
    programs = [(name, test.program) for name, test in sorted(LITMUS_SUITE.items())]
    default = GeneratorConfig()
    clustered = GeneratorConfig(instrs_per_thread=3, reorder_clusters=2)
    programs += [
        (f"gen-{seed}", random_wwrf_program(seed, default)) for seed in DEFAULT_SEEDS
    ]
    programs += [
        (f"cluster-{seed}", random_wwrf_program(seed, clustered))
        for seed in REORDER_SEEDS
    ]
    return programs


def test_static_validate_tier_discharge_rate(benchmark):
    programs = _corpus()

    def tiered_sweep():
        start = time.perf_counter()
        results = [
            (name, opt.name, validate_tiered(opt, program))
            for name, program in programs
            for opt in GALLERY
        ]
        return results, time.perf_counter() - start

    tiered, tiered_secs = benchmark.pedantic(tiered_sweep, rounds=1, iterations=1)

    start = time.perf_counter()
    exploration = [
        (name, opt.name, validate_optimizer(opt, program))
        for name, program in programs
        for opt in GALLERY
    ]
    exploration_secs = time.perf_counter() - start

    unsound = [
        (name, opt)
        for (name, opt, t), (_, _, e) in zip(tiered, exploration)
        if t.method == "static" and t.ok and not e.ok
    ]
    disagreements = [
        (name, opt)
        for (name, opt, t), (_, _, e) in zip(tiered, exploration)
        if t.ok != e.ok
    ]
    transformed = [(name, opt, t) for name, opt, t in tiered if t.changed]
    static_hits = [(name, opt) for name, opt, t in transformed if t.method == "static"]
    fraction = len(static_hits) / len(transformed) if transformed else 0.0
    behaviors_tiered = sum(t.behavior_count for _, _, t in tiered)
    speedup = exploration_secs / max(tiered_secs, 1e-9)

    rows = [
        ("programs (litmus + gen + cluster)", len(programs)),
        ("(program, pass) validations", len(tiered)),
        ("transformed", len(transformed)),
        ("statically certified", len(static_hits)),
        ("static discharge fraction (target ≥ 0.70)", f"{fraction:.2f}"),
        ("soundness violations (must be 0)", len(unsound)),
        ("verdict disagreements (must be 0)", len(disagreements)),
        ("behaviors enumerated (tiered)", behaviors_tiered),
        ("tiered sweep secs", f"{tiered_secs:.2f}"),
        ("exploration sweep secs", f"{exploration_secs:.2f}"),
        ("ladder speedup (target ≥ 2x)", f"{speedup:.2f}x"),
    ]
    report("E-STATIC-VALIDATE", rows)
    print("BENCH " + json.dumps({
        "experiment": "static-validate-tier",
        "programs": len(programs),
        "validations": len(tiered),
        "transformed": len(transformed),
        "statically_certified": len(static_hits),
        "discharge_fraction": round(fraction, 3),
        "soundness_violations": len(unsound),
        "disagreements": len(disagreements),
        "behaviors_tiered": behaviors_tiered,
        "tiered_secs": round(tiered_secs, 3),
        "exploration_secs": round(exploration_secs, 3),
        "speedup": round(speedup, 2),
    }))

    assert not unsound, f"CERTIFIED contradicts exploration on {unsound}"
    assert not disagreements, f"ladder verdict differs from exploration on {disagreements}"
    assert fraction >= 0.70
    assert speedup >= 2.0


def test_tier_zero_agreement_on_litmus():
    """Tier-0 PROVED verdicts must be byte-identical — in behavior-set
    terms — to what exploration concludes, over the full litmus suite."""
    for name, test in sorted(LITMUS_SUITE.items()):
        for opt in GALLERY:
            ladder = validate_tiered(opt, test.program)
            exploration = validate_optimizer(opt, test.program)
            assert ladder.ok == exploration.ok, (name, opt.name)
            if ladder.method == "static":
                assert ladder.behavior_count == 0, (name, opt.name)
