"""E-THM41 / E-LM51: behavior-set equivalence of the interleaving and
non-preemptive machines (Thm. 4.1) and ww-RF ⇔ ww-NPRF (Lm. 5.1) over the
litmus suite.

Paper expectation: equality on every program, unconditionally.
"""


from benchmarks.conftest import report
from repro.litmus.library import LITMUS_SUITE
from repro.races.wwrf import ww_nprf, ww_rf
from repro.semantics.exploration import behaviors, np_behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig


def config_for(test) -> SemanticsConfig:
    oracle = SyntacticPromises(budget=test.promise_budget, max_outstanding=test.promise_budget)
    return SemanticsConfig(promise_oracle=oracle)


def test_thm41_equivalence_suite(benchmark):
    def run():
        rows = []
        for name in sorted(LITMUS_SUITE):
            test = LITMUS_SUITE[name]
            config = config_for(test)
            interleaving = behaviors(test.program, config)
            nonpreemptive = np_behaviors(test.program, config)
            rows.append((name, interleaving.traces == nonpreemptive.traces))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("E-THM41", [(name, "equal" if ok else "DIFFER") for name, ok in rows])
    assert all(ok for _, ok in rows)


def test_lm51_wwrf_equivalence_suite(benchmark):
    def run():
        rows = []
        for name in sorted(LITMUS_SUITE):
            test = LITMUS_SUITE[name]
            config = config_for(test)
            rows.append(
                (name, ww_rf(test.program, config).race_free,
                 ww_nprf(test.program, config).race_free)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E-LM51",
        [(name, f"ww-RF={a} ww-NPRF={b}") for name, a, b in rows],
    )
    assert all(a == b for _, a, b in rows)
