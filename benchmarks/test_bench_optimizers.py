"""E-THM66: Correct(ConstProp) ∧ Correct(CSE) ∧ Correct(DCE) ∧
Correct(LICM) — translation validation over a generated ww-RF corpus,
plus raw optimizer throughput.

Paper expectation (Thm. 6.6): every transformation of every ww-race-free
source refines it and preserves ww-RF.
"""

import pytest

from benchmarks.conftest import report
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.opt.base import compose
from repro.opt.constprop import ConstProp
from repro.opt.cse import CSE
from repro.opt.dce import DCE
from repro.opt.licm import LICM
from repro.sim.validate import validate_corpus

CORPUS = GeneratorConfig(threads=2, instrs_per_thread=4, prints_per_thread=1)
SEEDS = range(10)

OPTIMIZERS = [ConstProp(), CSE(), DCE(), LICM()]


@pytest.mark.parametrize("optimizer", OPTIMIZERS, ids=lambda o: o.name)
def test_corpus_validation(benchmark, optimizer):
    result = benchmark.pedantic(
        lambda: validate_corpus(optimizer, SEEDS, CORPUS, check_target_wwrf=False),
        rounds=1,
        iterations=1,
    )
    report(
        f"E-THM66/{optimizer.name}",
        [
            ("programs validated", result.total),
            ("transformed", result.transformed),
            ("failures (paper: 0)", len(result.failures)),
        ],
    )
    assert result.ok, result.failures


def test_pipeline_validation(benchmark):
    pipeline = compose(compose(ConstProp(), CSE()), DCE())
    result = benchmark.pedantic(
        lambda: validate_corpus(pipeline, SEEDS, CORPUS, check_target_wwrf=False),
        rounds=1,
        iterations=1,
    )
    report(
        "E-THM66/pipeline",
        [
            ("programs validated", result.total),
            ("transformed", result.transformed),
            ("failures (paper: 0)", len(result.failures)),
        ],
    )
    assert result.ok, result.failures


def test_optimizer_throughput(benchmark):
    """Pure transformation speed (no validation): all four passes over a
    larger program."""
    big = GeneratorConfig(threads=4, instrs_per_thread=40, prints_per_thread=2)
    programs = [random_wwrf_program(seed, big) for seed in range(10)]
    pipeline = compose(compose(ConstProp(), CSE()), DCE())

    def run():
        return [pipeline.run(p) for p in programs]

    outputs = benchmark(run)
    instrs = sum(p.num_instructions() for p in programs)
    report(
        "E-THM66/throughput",
        [("programs", len(programs)), ("total instructions", instrs)],
    )
    assert len(outputs) == len(programs)
