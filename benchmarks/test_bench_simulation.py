"""E-REORDER / E-FIG16: the thread-local simulation checker on the
paper's worked examples (Sec. 2.3 Reorder; Sec. 7.1 / Fig. 16 DCE).

Paper expectation:
  Reorder simulates under I_id even for racy programs (Fig. 14(d));
  Fig. 16 DCE simulates under I_dce but NOT under I_id (the reason the
  invariant is a parameter, Sec. 8).
"""


from benchmarks.conftest import report
from repro.lang.builder import ProgramBuilder
from repro.sim.invariant import dce_invariant, identity_invariant
from repro.sim.simulation import check_thread_simulation


def reorder_pair():
    def mk(reordered):
        pb = ProgramBuilder()
        f = pb.function("t1")
        b = f.block("entry")
        if reordered:
            b.store("y", 2, "na")
            b.load("r", "x", "na")
        else:
            b.load("r", "x", "na")
            b.store("y", 2, "na")
        b.print_("r")
        b.ret()
        pb.thread("t1")
        return pb.build()

    return mk(False), mk(True)


def dce_pair():
    def mk(eliminated):
        pb = ProgramBuilder()
        f = pb.function("t1")
        b = f.block("entry")
        if eliminated:
            b.skip()
        else:
            b.store("x", 1, "na")
        b.store("x", 2, "na")
        b.ret()
        pb.thread("t1")
        return pb.build()

    return mk(False), mk(True)


def test_reorder_simulation(benchmark):
    src, tgt = reorder_pair()
    result = benchmark(lambda: check_thread_simulation(src, tgt, "t1", identity_invariant()))
    report(
        "E-REORDER",
        [
            ("paper: simulates under I_id", True),
            ("measured", result.holds),
            ("product states", result.states_explored),
        ],
    )
    assert result.holds


def test_fig16_simulation_with_idce(benchmark):
    src, tgt = dce_pair()
    result = benchmark(lambda: check_thread_simulation(src, tgt, "t1", dce_invariant()))
    report(
        "E-FIG16/I_dce",
        [
            ("paper: simulates under I_dce", True),
            ("measured", result.holds),
            ("product states", result.states_explored),
        ],
    )
    assert result.holds


def test_fig16_simulation_with_iid_fails(benchmark):
    src, tgt = dce_pair()
    result = benchmark(lambda: check_thread_simulation(src, tgt, "t1", identity_invariant()))
    report(
        "E-FIG16/I_id",
        [("paper: fails under I_id", True), ("measured holds", result.holds)],
    )
    assert not result.holds
