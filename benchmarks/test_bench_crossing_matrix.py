"""E-CROSSING: the paper's atomic-access crossing matrix (Sec. 1 and 7).

Paper expectation:

  ===========  ==========  ==========  ==========
  pass         rlx r/w     rel write   acq read
  ===========  ==========  ==========  ==========
  LICM / CSE   crosses     crosses     BLOCKED
  DCE          crosses     BLOCKED     crosses
  ===========  ==========  ==========  ==========

Each cell is measured by building a probe program with the given atomic
access between the optimization opportunity and its use, running the
pass, and checking whether it fired — plus refinement validation that
every firing is sound.
"""

import pytest

from benchmarks.conftest import report
from repro.lang.builder import ProgramBuilder
from repro.lang.syntax import Assign, Skip
from repro.opt.cse import CSE
from repro.opt.dce import DCE
from repro.sim.validate import validate_optimizer


def cse_probe(kind: str):
    """r1 := a.na; <atomic>; r2 := a.na — can CSE eliminate the reload?"""
    pb = ProgramBuilder(atomics={"x"})
    f = pb.function("t1")
    b = f.block("entry")
    b.load("r1", "a", "na")
    if kind == "rlx_read":
        b.load("g", "x", "rlx")
    elif kind == "rlx_write":
        b.store("x", 1, "rlx")
    elif kind == "rel_write":
        b.store("x", 1, "rel")
    elif kind == "acq_read":
        b.load("g", "x", "acq")
    b.load("r2", "a", "na")
    b.print_("r1")
    b.print_("r2")
    b.ret()
    pb.thread("t1")
    return pb.build()


def dce_probe(kind: str):
    """a.na := 1; <atomic>; a.na := 2 — can DCE kill the first store?"""
    pb = ProgramBuilder(atomics={"x"})
    f = pb.function("t1")
    b = f.block("entry")
    b.store("a", 1, "na")
    if kind == "rlx_read":
        b.load("g", "x", "rlx")
    elif kind == "rlx_write":
        b.store("x", 1, "rlx")
    elif kind == "rel_write":
        b.store("x", 1, "rel")
    elif kind == "acq_read":
        b.load("g", "x", "acq")
    b.store("a", 2, "na")
    b.load("r", "a", "na")
    b.print_("r")
    b.ret()
    pb.thread("t1")
    return pb.build()


def cse_fired(program) -> bool:
    out = CSE().run(program)
    instrs = out.function("t1")["entry"].instrs
    return any(isinstance(i, Assign) and i.dst == "r2" for i in instrs)


def dce_fired(program) -> bool:
    out = DCE().run(program)
    return isinstance(out.function("t1")["entry"].instrs[0], Skip)


KINDS = ("rlx_read", "rlx_write", "rel_write", "acq_read")
PAPER_CSE = {"rlx_read": True, "rlx_write": True, "rel_write": True, "acq_read": False}
PAPER_DCE = {"rlx_read": True, "rlx_write": True, "rel_write": False, "acq_read": True}


def test_crossing_matrix(benchmark):
    def run():
        return (
            {kind: cse_fired(cse_probe(kind)) for kind in KINDS},
            {kind: dce_fired(dce_probe(kind)) for kind in KINDS},
        )

    cse_row, dce_row = benchmark(run)
    report(
        "E-CROSSING",
        [(f"CSE across {kind}", f"paper={PAPER_CSE[kind]} measured={cse_row[kind]}")
         for kind in KINDS]
        + [(f"DCE across {kind}", f"paper={PAPER_DCE[kind]} measured={dce_row[kind]}")
           for kind in KINDS],
    )
    assert cse_row == PAPER_CSE
    assert dce_row == PAPER_DCE


@pytest.mark.parametrize("kind", KINDS)
def test_cse_crossings_sound(benchmark, kind):
    """Every cell where the pass fires must be a sound transformation."""
    result = benchmark.pedantic(
        lambda: validate_optimizer(CSE(), cse_probe(kind), check_target_wwrf=False),
        rounds=1,
        iterations=1,
    )
    assert result.ok


@pytest.mark.parametrize("kind", KINDS)
def test_dce_crossings_sound(benchmark, kind):
    result = benchmark.pedantic(
        lambda: validate_optimizer(DCE(), dce_probe(kind), check_target_wwrf=False),
        rounds=1,
        iterations=1,
    )
    assert result.ok
