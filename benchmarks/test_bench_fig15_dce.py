"""E-FIG15: DCE across a release write is unsound; the paper's
Lv_Analyzer release barrier blocks it.

Paper expectation (Sec. 7.1, Fig. 15):
  - correct DCE keeps ``y := 2`` (release barrier) and refines;
  - the incorrect elimination lets g() print 0, which the source never
    does — refinement fails.
"""


from benchmarks.conftest import report
from repro.lang.syntax import AccessMode, Const, Store
from repro.litmus.library import fig15_program
from repro.opt.dce import DCE
from repro.sim.refinement import check_refinement
from repro.sim.validate import validate_optimizer


def test_correct_dce_keeps_barrier_write(benchmark):
    source = fig15_program(False)
    validation = benchmark(lambda: validate_optimizer(DCE(), source))
    target = DCE().run(source)
    kept = target.function("t1")["entry"].instrs[0] == Store("y", Const(2), AccessMode.NA)
    report(
        "E-FIG15/correct",
        [
            ("paper: y := 2 kept", True),
            ("measured: y := 2 kept", kept),
            ("refinement", str(validation.refinement)),
            ("ww-RF preserved", validation.target_wwrf.race_free),
        ],
    )
    assert kept and validation.ok


def test_incorrect_elimination_fails(benchmark):
    result = benchmark(lambda: check_refinement(fig15_program(False), fig15_program(True)))
    report(
        "E-FIG15/incorrect",
        [
            ("paper: g may print 0 only in target", True),
            ("src outcomes", sorted(result.source_behaviors.outputs())),
            ("tgt outcomes", sorted(result.target_behaviors.outputs())),
            ("refinement holds", result.holds),
        ],
    )
    assert not result.holds
    assert (0,) in result.target_behaviors.outputs()
    assert (0,) not in result.source_behaviors.outputs()
