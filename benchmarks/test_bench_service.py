"""E-SERVICE: the verification daemon under load and under fire.

Three measurements of the fault-tolerant service layer
(``docs/service.md``):

* **batch throughput, cold vs warm store** — the same batch POSTed to a
  fresh daemon and to one warm-started from the content-addressed store
  the first run populated; every warm answer must come from cache with
  its original confidence;
* **recovery time after worker kill** — every job's exhaustive worker
  is SIGKILLed; the supervisor's retry ladder must still answer all of
  them (capped at BOUNDED), and the report shows what the recovery
  costs over the undisturbed baseline;
* **answer integrity under a 10% fault schedule** — with
  ``chaos.schedule(kill_rate=0.1)`` killing a random-but-deterministic
  tenth of worker attempts, every answered request must match the
  fault-free reference verdict and never claim stronger confidence.
  Unanswered is acceptable; wrong or overclaimed is the failure mode
  this service exists to rule out.
"""

import asyncio
import json
import threading
import time
import urllib.request

from benchmarks.conftest import report
from repro.robust import chaos
from repro.robust.confidence import Confidence
from repro.robust.retry import RetryPolicy
from repro.serve.daemon import DaemonConfig, VerificationDaemon
from repro.serve.store import ContentStore
from repro.serve.supervisor import JobSpec, Supervisor, SupervisorConfig

FAST = SupervisorConfig(
    job_deadline_seconds=15.0,
    retry=RetryPolicy(max_attempts=3, base_delay_seconds=0.01),
)


def _litmus_source(value: int) -> str:
    """A store-buffer variant; distinct written values keep the jobs'
    content keys distinct while every spec stays satisfiable."""
    return f"""
//! name: SB{value}
//! exists (0, 0)
//! forbidden (7, 7)
atomics x, y;
fn t1 {{ entry: x.rlx := {value}; r1 := y.rlx; print(r1); return; }}
fn t2 {{ entry: y.rlx := {value}; r2 := x.rlx; print(r2); return; }}
threads t1, t2;
"""


CORPUS = [(f"sb{v}", _litmus_source(v)) for v in range(1, 7)]


def _specs():
    return [JobSpec("litmus", source, name=name) for name, source in CORPUS]


class _Served:
    """A daemon on a background event loop plus a blocking POST helper."""

    def __init__(self, config: DaemonConfig) -> None:
        self.daemon = VerificationDaemon(config)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        self.port = asyncio.run_coroutine_threadsafe(
            self.daemon.start(), self.loop
        ).result(timeout=10)

    def post(self, path, payload):
        req = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=json.dumps(payload).encode(),
        )
        with urllib.request.urlopen(req, timeout=120) as resp:
            return json.loads(resp.read())

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.daemon.drain(10.0), self.loop
        ).result(timeout=30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


def test_batch_throughput_cold_vs_warm(benchmark, tmp_path):
    store_root = str(tmp_path / "store")
    payload = {"programs": [{"name": n, "source": s} for n, s in CORPUS]}

    cold = _Served(DaemonConfig(port=0, workers=2, store_root=store_root,
                                supervisor=FAST))
    try:
        started = time.perf_counter()
        cold_body = cold.post("/v1/litmus", payload)
        cold_secs = time.perf_counter() - started
    finally:
        cold.stop()
    assert cold_body["ok"] is True and cold_body["confidence"] == "PROVED"

    warm = _Served(DaemonConfig(port=0, workers=2, store_root=store_root,
                                supervisor=FAST))
    try:
        warm_body = benchmark.pedantic(
            lambda: warm.post("/v1/litmus", payload), rounds=1, iterations=1
        )
        warm_secs = benchmark.stats.stats.total
    finally:
        warm.stop()

    assert warm_body["ok"] is True and warm_body["confidence"] == "PROVED"
    assert all(r["cached"] for r in warm_body["results"])

    jobs = len(CORPUS)
    report("E-SERVICE/throughput", [
        ("batch size", jobs),
        ("cold store (fork per job)", f"{jobs / cold_secs:.1f} jobs/s"),
        ("warm store (preloaded)", f"{jobs / warm_secs:.1f} jobs/s"),
        ("warm speedup", f"{cold_secs / warm_secs:.1f}x"),
    ])


def test_recovery_after_worker_kill(benchmark):
    specs = _specs()

    baseline_supervisor = Supervisor(config=FAST)
    started = time.perf_counter()
    baseline = baseline_supervisor.run_batch(specs)
    baseline_secs = time.perf_counter() - started
    assert all(r.ok is True and r.confidence == "PROVED" for r in baseline)

    supervisor = Supervisor(config=FAST)
    rules = tuple(
        chaos.FaultRule("supervisor.job", kind=chaos.KILL,
                        key=f"{name}:exhaustive", count=None)
        for name, _ in CORPUS
    )

    def killed_sweep():
        with chaos.chaos_rules(*rules):
            return supervisor.run_batch(specs)

    results = benchmark.pedantic(killed_sweep, rounds=1, iterations=1)
    killed_secs = benchmark.stats.stats.total

    # Every job recovered on the bounded rung — answered, never PROVED.
    assert all(r.ok is True for r in results)
    assert all(r.confidence == "BOUNDED" for r in results)
    assert supervisor.stats()["worker_crashes"] == len(specs)

    report("E-SERVICE/recovery", [
        ("jobs (one SIGKILL each)", len(specs)),
        ("undisturbed sweep", f"{baseline_secs:.2f}s"),
        ("sweep with kills", f"{killed_secs:.2f}s"),
        ("recovery overhead/job",
         f"{(killed_secs - baseline_secs) / len(specs) * 1000:.0f}ms"),
        ("answered after kill", f"{len(results)}/{len(specs)}"),
    ])


def test_answer_integrity_under_fault_schedule(tmp_path):
    # A wider corpus than the throughput batch: at kill_rate=0.10 the
    # schedule should actually claim a few workers (value 7 is skipped —
    # writing 7 would satisfy the forbidden (7,7) outcome).
    corpus = [(f"sb{v}", _litmus_source(v)) for v in range(1, 26) if v != 7]
    specs = [JobSpec("litmus", source, name=name) for name, source in corpus]
    reference = {
        r.name: r for r in Supervisor(config=FAST).run_batch(specs)
    }
    assert all(r.ok is True for r in reference.values())

    store = ContentStore(str(tmp_path / "store"))  # exercised under chaos too
    supervisor = Supervisor(store, FAST)
    injector = chaos.schedule(
        seed=11, sites=("supervisor.job",), kill_rate=0.10
    )
    chaos.install(injector)
    try:
        results = supervisor.run_batch(specs)
    finally:
        chaos.uninstall()

    answered = [r for r in results if r.answered]
    wrong = [
        r for r in answered
        if r.ok is not reference[r.name].ok
    ]
    overclaimed = [
        r for r in answered
        if str(Confidence.weakest((
            Confidence(r.confidence), Confidence(reference[r.name].confidence)
        ))) != r.confidence
    ]
    degraded = [r for r in answered if r.confidence != "PROVED"]

    assert not wrong, f"chaos produced wrong verdicts: {wrong}"
    assert not overclaimed, f"chaos produced overclaims: {overclaimed}"
    # The schedule must actually have fired (seed 11 kills 2 of 24
    # first-rung workers) — otherwise this test is vacuous.
    assert supervisor.stats()["worker_crashes"] > 0
    assert degraded

    report("E-SERVICE/chaos-10pct", [
        ("fault schedule", "kill_rate=0.10, seed=11"),
        ("requests", len(specs)),
        ("answered", f"{len(answered)}/{len(specs)}"),
        ("degraded-but-honest", len(degraded)),
        ("wrong verdicts", f"{len(wrong)} (must be 0)"),
        ("overclaimed confidence", f"{len(overclaimed)} (must be 0)"),
    ])
