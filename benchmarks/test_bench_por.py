"""E-POR: partial-order reduction — state counts and wall-clock of the
exhaustive explorer under ``--por=none`` (every interleaving),
``--por=fusion`` (eager pure-local step fusion), and ``--por=dpor``
(sleep-set dynamic POR, :mod:`repro.semantics.dpor`), with behavior-set
equality asserted on every measured program and a machine-readable
``BENCH`` json line per suite comparison."""

import dataclasses
import json
import time

from benchmarks.conftest import report
from repro.lang.builder import straightline_program
from repro.lang.syntax import AccessMode, Load
from repro.litmus.library import LITMUS_SUITE, iriw_rlx
from repro.semantics.exploration import Explorer, behaviors
from repro.semantics.promises import SyntacticPromises
from repro.semantics.thread import SemanticsConfig


def configs_for(test):
    base = SemanticsConfig()
    if test.promise_budget:
        base = SemanticsConfig(
            promise_oracle=SyntacticPromises(
                budget=test.promise_budget, max_outstanding=test.promise_budget
            )
        )
    return base, dataclasses.replace(base, fuse_local_steps=True)


def test_por_reduction_across_suite(benchmark):
    def run():
        rows = []
        for name in sorted(LITMUS_SUITE):
            test = LITMUS_SUITE[name]
            plain_cfg, fused_cfg = configs_for(test)
            plain = behaviors(test.program, plain_cfg)
            fused = behaviors(test.program, fused_cfg)
            assert plain.traces == fused.traces, name
            rows.append((name, plain.state_count, fused.state_count))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    total_plain = sum(p for _, p, _ in rows)
    total_fused = sum(f for _, _, f in rows)
    report(
        "E-POR/suite",
        [(name, f"{p} -> {f} ({p/f:.2f}x)") for name, p, f in rows]
        + [("TOTAL", f"{total_plain} -> {total_fused} ({total_plain/total_fused:.2f}x)")],
    )
    assert total_fused < total_plain


def test_por_on_iriw(benchmark):
    program = iriw_rlx()
    fused_cfg = SemanticsConfig(fuse_local_steps=True)

    def run():
        return behaviors(program, fused_cfg)

    fused = benchmark(run)
    plain = behaviors(program)
    assert plain.traces == fused.traces
    report(
        "E-POR/iriw",
        [
            ("plain states", plain.state_count),
            ("fused states", fused.state_count),
            ("reduction", f"{plain.state_count / fused.state_count:.2f}x"),
        ],
    )


def test_por_modes_across_suite(benchmark):
    """none/fusion/dpor on every litmus test: equality + BENCH trajectory."""

    def run():
        rows = []
        for name in sorted(LITMUS_SUITE):
            test = LITMUS_SUITE[name]
            base, _ = configs_for(test)
            counts = {}
            times = {}
            traces = {}
            for por in ("none", "fusion", "dpor"):
                start = time.monotonic()
                result = behaviors(test.program, dataclasses.replace(base, por=por))
                times[por] = time.monotonic() - start
                counts[por] = result.state_count
                traces[por] = result.traces
            assert traces["none"] == traces["fusion"] == traces["dpor"], name
            rows.append((name, counts, times))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    totals = {
        por: sum(counts[por] for _, counts, _ in rows)
        for por in ("none", "fusion", "dpor")
    }
    total_secs = {
        por: round(sum(times[por] for _, _, times in rows), 3)
        for por in ("none", "fusion", "dpor")
    }
    report(
        "E-POR/modes",
        [
            (name, " / ".join(str(counts[p]) for p in ("none", "fusion", "dpor")))
            for name, counts, _ in rows
        ]
        + [("TOTAL (none/fusion/dpor)",
            f"{totals['none']} / {totals['fusion']} / {totals['dpor']}")],
    )
    print("BENCH " + json.dumps({
        "experiment": "por-modes-litmus",
        "none_states": totals["none"],
        "fusion_states": totals["fusion"],
        "dpor_states": totals["dpor"],
        "none_secs": total_secs["none"],
        "fusion_secs": total_secs["fusion"],
        "dpor_secs": total_secs["dpor"],
        "reduction": round(totals["none"] / totals["dpor"], 2),
    }))
    assert totals["dpor"] < totals["fusion"] < totals["none"]


def test_read_read_independence_regression():
    """Two pure-reader threads over the same locations: same-location
    read/read steps are independent, so DPOR must collapse the family to
    essentially one schedule (a structural reduction, like the disjoint
    writers), with zero redundant executions.  Regression guard for the
    dependence relation: if reads ever started conflicting with reads,
    this family would blow back up toward the unreduced count."""
    program = straightline_program(
        [
            [Load(f"r{i}", f"v{i}", AccessMode.NA) for i in range(4)],
            [Load(f"s{i}", f"v{i}", AccessMode.NA) for i in range(4)],
        ]
    )
    counts = {}
    for por in ("none", "dpor"):
        explorer = Explorer(program, SemanticsConfig(por=por)).build()
        assert explorer.exhaustive
        counts[por] = len(explorer.states)
        if por == "dpor":
            assert explorer.dpor_stats.redundant_executions == 0
    # 11 states when this guard was added (one schedule + bookkeeping)
    # vs 72 unreduced; 5x headroom against noise, far under 72.
    assert counts["dpor"] <= 15
    assert counts["none"] >= 4 * counts["dpor"]
