"""Compare the latest BENCH.json rows against the previous PR's.

``BENCH.json`` is an append-only trajectory: each PR re-runs the
benchmark families and appends one json line per (experiment, family)
with its ``pr`` number.  This script groups the rows by
``(experiment, family)``, takes the two highest PR numbers present for
each group, and flags regressions:

* a ``dpor_states`` (or ``states``) increase of more than the threshold
  (default 20%) fails — state counts are deterministic, so any growth is
  a real reduction regression, with the threshold absorbing benign
  bookkeeping drift;
* a family present in the previous PR but missing from the latest is
  reported (benchmarks should not silently disappear);
* wall-clock columns are reported but never enforced (CI machines are
  too noisy for timing gates).

Usage::

    python benchmarks/bench_compare.py [--bench FILE] [--threshold PCT]

Exit status 1 on any regression, 0 otherwise.  With fewer than two PRs
of history for every family the script passes trivially (the seed PR has
nothing to compare against).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: Columns that measure exploration size: deterministic, gate-worthy.
STATE_COLUMNS = ("dpor_states", "fusion_states", "none_states", "states")


def load_rows(path: str) -> List[dict]:
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def group_rows(rows: List[dict]) -> Dict[Tuple[str, str], Dict[int, dict]]:
    """``{(experiment, family): {pr: row}}`` — the latest row wins when a
    PR re-recorded the same family."""
    groups: Dict[Tuple[str, str], Dict[int, dict]] = {}
    for row in rows:
        key = (row.get("experiment", "?"), row.get("family", ""))
        groups.setdefault(key, {})[int(row.get("pr", 0))] = row
    return groups


def compare(
    groups: Dict[Tuple[str, str], Dict[int, dict]], threshold: float
) -> Tuple[List[str], List[str]]:
    """Returns (regressions, notes)."""
    regressions: List[str] = []
    notes: List[str] = []
    latest_pr = max((pr for prs in groups.values() for pr in prs), default=0)
    for (experiment, family), prs in sorted(groups.items()):
        label = f"{experiment}/{family}" if family else experiment
        history = sorted(prs)
        if history[-1] != latest_pr:
            notes.append(
                f"MISSING {label}: last recorded by PR {history[-1]}, "
                f"latest PR is {latest_pr}"
            )
            continue
        if len(history) < 2:
            notes.append(f"NEW {label}: first recorded by PR {history[-1]}")
            continue
        prev, cur = prs[history[-2]], prs[history[-1]]
        for column in STATE_COLUMNS:
            if column not in prev or column not in cur:
                continue
            before, after = prev[column], cur[column]
            if before and after > before * (1 + threshold / 100.0):
                regressions.append(
                    f"REGRESSION {label}.{column}: {before} -> {after} "
                    f"(+{(after / before - 1) * 100:.1f}% > {threshold:.0f}%)"
                )
            else:
                notes.append(
                    f"ok {label}.{column}: {before} -> {after}"
                )
            break  # gate each family on its primary state column only
    return regressions, notes


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="BENCH.json",
                        help="path to the BENCH json-lines file")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="allowed state-count growth in percent")
    args = parser.parse_args(argv)
    try:
        rows = load_rows(args.bench)
    except OSError as exc:
        print(f"bench-compare: cannot read {args.bench}: {exc}")
        return 1
    if not rows:
        print(f"bench-compare: {args.bench} is empty; nothing to compare")
        return 0
    regressions, notes = compare(group_rows(rows), args.threshold)
    for note in notes:
        print(f"bench-compare: {note}")
    for regression in regressions:
        print(f"bench-compare: {regression}")
    if regressions:
        print(f"bench-compare: {len(regressions)} regression(s)")
        return 1
    print("bench-compare: no state-count regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
