"""E-STATIC-MERGE: static discharge of the merge family (tier 0).

The merge-family passes are built to be *fully* statically dischargeable:
Merge only performs adjacent, mode-side-conditioned merges (each one
re-verified by the crossing oracle's merge explainer) plus stored-value
forwarding of plain reads (re-derived by the Owicki–Gries
``store-forward`` rule), and UnusedRead only drops plain, dead,
interference-free reads.  Over the litmus library plus generated corpora
with mergeable clusters and dead plain reads, the tiered ladder should
certify nearly every transformation without enumerating a single
behavior — a stronger target (≥ 0.95) than the general gallery's
E-STATIC-VALIDATE (≥ 0.70).

Reported (human rows + a machine-readable ``BENCH`` json line):

* soundness — no CERTIFIED verdict contradicted by exploration;
* the static discharge fraction over transformed programs (≥ 0.95);
* ladder speedup, tiered vs. always-exploration (target ≥ 2x).
"""

import json
import time

from benchmarks.conftest import report
from repro.litmus.generator import GeneratorConfig, random_wwrf_program
from repro.litmus.library import LITMUS_SUITE
from repro.opt import Merge, UnusedRead
from repro.sim import validate_optimizer, validate_tiered

MERGE_SEEDS = range(20)
UNUSED_SEEDS = range(15)

GALLERY = (Merge(), UnusedRead())


def _corpus():
    programs = [(name, test.program) for name, test in sorted(LITMUS_SUITE.items())]
    mergeable = GeneratorConfig(instrs_per_thread=3, merge_clusters=2)
    deadreads = GeneratorConfig(instrs_per_thread=3, unused_read_sites=2)
    programs += [
        (f"merge-{seed}", random_wwrf_program(seed, mergeable))
        for seed in MERGE_SEEDS
    ]
    programs += [
        (f"unused-{seed}", random_wwrf_program(seed, deadreads))
        for seed in UNUSED_SEEDS
    ]
    return programs


def test_static_merge_discharge_rate(benchmark):
    programs = _corpus()

    def tiered_sweep():
        start = time.perf_counter()
        results = [
            (name, opt.name, validate_tiered(opt, program))
            for name, program in programs
            for opt in GALLERY
        ]
        return results, time.perf_counter() - start

    tiered, tiered_secs = benchmark.pedantic(tiered_sweep, rounds=1, iterations=1)

    start = time.perf_counter()
    exploration = [
        (name, opt.name, validate_optimizer(opt, program))
        for name, program in programs
        for opt in GALLERY
    ]
    exploration_secs = time.perf_counter() - start

    unsound = [
        (name, opt)
        for (name, opt, t), (_, _, e) in zip(tiered, exploration)
        if t.method == "static" and t.ok and not e.ok
    ]
    disagreements = [
        (name, opt)
        for (name, opt, t), (_, _, e) in zip(tiered, exploration)
        if t.ok != e.ok
    ]
    transformed = [(name, opt, t) for name, opt, t in tiered if t.changed]
    static_hits = [(name, opt) for name, opt, t in transformed if t.method == "static"]
    fraction = len(static_hits) / len(transformed) if transformed else 0.0
    behaviors_tiered = sum(t.behavior_count for _, _, t in tiered)
    speedup = exploration_secs / max(tiered_secs, 1e-9)

    rows = [
        ("programs (litmus + merge + unused)", len(programs)),
        ("(program, pass) validations", len(tiered)),
        ("transformed", len(transformed)),
        ("statically certified", len(static_hits)),
        ("static discharge fraction (target ≥ 0.95)", f"{fraction:.2f}"),
        ("soundness violations (must be 0)", len(unsound)),
        ("verdict disagreements (must be 0)", len(disagreements)),
        ("behaviors enumerated (tiered)", behaviors_tiered),
        ("tiered sweep secs", f"{tiered_secs:.2f}"),
        ("exploration sweep secs", f"{exploration_secs:.2f}"),
        ("ladder speedup (target ≥ 2x)", f"{speedup:.2f}x"),
    ]
    report("E-STATIC-MERGE", rows)
    print("BENCH " + json.dumps({
        "experiment": "static-merge",
        "programs": len(programs),
        "validations": len(tiered),
        "transformed": len(transformed),
        "statically_certified": len(static_hits),
        "discharge_fraction": round(fraction, 3),
        "soundness_violations": len(unsound),
        "disagreements": len(disagreements),
        "behaviors_tiered": behaviors_tiered,
        "tiered_secs": round(tiered_secs, 3),
        "exploration_secs": round(exploration_secs, 3),
        "speedup": round(speedup, 2),
    }))

    assert not unsound, f"CERTIFIED contradicts exploration on {unsound}"
    assert not disagreements, f"ladder verdict differs from exploration on {disagreements}"
    assert fraction >= 0.95
    assert speedup >= 2.0


def test_merge_family_agreement_on_litmus():
    """Tier-0 verdicts must agree with exploration over the full litmus
    suite, and a static discharge must enumerate zero behaviors."""
    for name, test in sorted(LITMUS_SUITE.items()):
        for opt in GALLERY:
            ladder = validate_tiered(opt, test.program)
            exploration = validate_optimizer(opt, test.program)
            assert ladder.ok == exploration.ok, (name, opt.name)
            if ladder.method == "static":
                assert ladder.behavior_count == 0, (name, opt.name)
